// Command rrqbench regenerates the paper's evaluation figures (Figures
// 7–17) as printed tables. By default every experiment runs at quick scale;
// -full switches to the paper's parameters.
//
// Usage:
//
//	rrqbench                        # run everything, quick scale
//	rrqbench -exp fig10a            # one experiment
//	rrqbench -exp fig9a,fig9b -full
//	rrqbench -list
//	rrqbench -benchjson BENCH_solve.json   # machine-readable solve benchmark
//	rrqbench -benchjson BENCH_solve.json -cpus 1,2,4,8   # + multi-core matrix
//	rrqbench -benchjson BENCH_solve.json -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rrq"
	"rrq/internal/expt"
	"rrq/internal/server"
	"rrq/internal/sim"
)

// summaryReference picks the proposed algorithm to normalize speedups to:
// Sweeping when present, otherwise E-PT.
func summaryReference(t *expt.Table) string {
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if c.Algo == "Sweeping" {
				return "Sweeping"
			}
		}
	}
	return "E-PT"
}

// writeCSV writes one table as <dir>/<table-id>.csv, creating dir.
func writeCSV(dir string, t *expt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		full       = flag.Bool("full", false, "use the paper's full-scale parameters")
		seed       = flag.Int64("seed", 0, "override the experiment seed (0 = default)")
		repeats    = flag.Int("repeats", 0, "query points averaged per cell (0 = default)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		csvDir     = flag.String("csv", "", "also write each table as <dir>/<table-id>.csv")
		budget     = flag.Duration("budget", 0, "per-cell wall-clock budget (0 = default)")
		timeout    = flag.Duration("timeout", 0, "alias of -budget: per-cell wall-clock budget (0 = default)")
		workers    = flag.Int("workers", 0, "worker count for the batch experiment (0 = sweep defaults)")
		benchJSON  = flag.String("benchjson", "", "run the solve benchmark suite and write machine-readable JSON to this path")
		cpus       = flag.String("cpus", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4,8): with -benchjson, also run the shared-vs-independent batch matrix at each value")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this path (go tool pprof)")
	)
	flag.Parse()
	if *budget == 0 {
		*budget = *timeout
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rrqbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rrqbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rrqbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the profile reflects live + cumulative allocs
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "rrqbench:", err)
			}
		}()
	}

	if *list {
		for _, id := range expt.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *benchJSON != "" {
		cpuVals, err := parseCPUList(*cpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rrqbench:", err)
			os.Exit(2)
		}
		if err := runBenchJSON(*benchJSON, *full, *seed, cpuVals); err != nil {
			fmt.Fprintln(os.Stderr, "rrqbench:", err)
			os.Exit(1)
		}
		return
	}

	sc := expt.Scale{Full: *full, Seed: *seed, Repeats: *repeats, CellBudget: *budget, Workers: *workers}
	ids := expt.IDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := expt.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rrqbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := runner(sc)
		for _, t := range tables {
			t.Print(os.Stdout)
			expt.PrintSummary(os.Stdout, t, summaryReference(t))
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, "rrqbench:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// benchScenario is one solve-benchmark configuration: a synthetic dataset
// and a batch of queries answered by one algorithm.
type benchScenario struct {
	Name    string
	Dist    rrq.DistType
	N, D    int
	Algo    rrq.Algorithm
	K       int
	Eps     float64
	Queries int
	Workers int // batch (inter-query) workers; 0 = GOMAXPROCS
	Intra   int // intra-query workers; 0/1 = serial solves
}

// benchPhase is the JSON form of one phase timer.
type benchPhase struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
	MeanNs  int64 `json:"mean_ns"`
}

// benchResult is the JSON record of one scenario run.
type benchResult struct {
	Name        string                `json:"name"`
	Algo        string                `json:"algo"`
	N           int                   `json:"n"`
	D           int                   `json:"d"`
	K           int                   `json:"k"`
	Eps         float64               `json:"eps"`
	Queries     int                   `json:"queries"`
	Workers     int                   `json:"workers"`
	Intra       int                   `json:"intra_workers"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	Note        string                `json:"note,omitempty"`
	Solved      int                   `json:"solved"`
	Failed      int                   `json:"failed"`
	ElapsedNs   int64                 `json:"elapsed_ns"`
	QueryTimeNs int64                 `json:"query_time_ns"`
	NsPerQuery  int64                 `json:"ns_per_query"`
	AllocsPerQ  int64                 `json:"allocs_per_query"`
	BytesPerQ   int64                 `json:"bytes_per_query"`
	Stats       rrq.Stats             `json:"stats"`
	Phases      map[string]benchPhase `json:"phases"`
}

// cpuMatrixRow is one cell of the multi-core batch matrix: the same
// mixed-(k, ε) batch workload run at a pinned GOMAXPROCS, with cross-query
// sharing on (shared=true) or off (shared=false, independent per-query
// solves through the identical dispatch path). SpeedupVs1 normalizes
// ns/query to the cpus=1 row of the same scenario and sharing flag; it is
// machine-dependent and informational — regression gates compare the
// shared/independent ratio instead.
type cpuMatrixRow struct {
	Name       string  `json:"name"`
	CPUs       int     `json:"cpus"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Shared     bool    `json:"shared"`
	N          int     `json:"n"`
	D          int     `json:"d"`
	Queries    int     `json:"queries"`
	Rounds     int     `json:"rounds"`
	Deduped    int     `json:"deduped"`
	NsPerQuery int64   `json:"ns_per_query"`
	AllocsPerQ int64   `json:"allocs_per_query"`
	BytesPerQ  int64   `json:"bytes_per_query"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	Note       string  `json:"note,omitempty"`
}

// benchReport is the top-level BENCH_solve.json document.
type benchReport struct {
	GoVersion  string               `json:"go_version"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Full       bool                 `json:"full"`
	Seed       int64                `json:"seed"`
	Results    []benchResult        `json:"results"`
	CPUMatrix  []cpuMatrixRow       `json:"cpu_matrix,omitempty"`
	Index      []indexBenchResult   `json:"index_results"`
	Sim        []simBenchResult     `json:"sim_results"`
	Anytime    []anytimeBenchResult `json:"anytime_results"`
}

// parseCPUList parses the -cpus flag ("1,2,4,8") into sorted-unique-free
// (order-preserving) positive GOMAXPROCS values. Empty input means no matrix.
func parseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-cpus: invalid value %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// indexScenario is one index-serving benchmark configuration: the dataset an
// index is built over and the query stream replayed twice — warm through the
// snapshot, cold through per-query preprocessing.
type indexScenario struct {
	Name    string
	Dist    rrq.DistType
	N, D    int
	Algo    rrq.Algorithm
	K       int
	Eps     float64
	Queries int
	Rounds  int // times each query repeats (warm rounds hit the plane cache)
}

// indexBenchResult is the JSON record of one index scenario: the one-time
// build cost, then warm (snapshot-served) vs cold (per-query validation +
// skyband + plane classification) cost over the identical query stream, plus
// the incremental-maintenance cost of an interleaved Insert/Delete stream.
type indexBenchResult struct {
	Name            string  `json:"name"`
	N               int     `json:"n"`
	D               int     `json:"d"`
	K               int     `json:"k"`
	Eps             float64 `json:"eps"`
	Queries         int     `json:"queries"`
	Rounds          int     `json:"rounds"`
	BuildNs         int64   `json:"build_ns"`
	WarmNsPerQuery  int64   `json:"warm_ns_per_query"`
	ColdNsPerQuery  int64   `json:"cold_ns_per_query"`
	WarmQPS         float64 `json:"warm_queries_per_sec"`
	ColdQPS         float64 `json:"cold_queries_per_sec"`
	Speedup         float64 `json:"speedup"`
	MaintainOps     int     `json:"maintain_ops"`
	MaintainNsPerOp int64   `json:"maintain_ns_per_op"`
}

// simScenario is one serving-stack simulation: the admission policy and
// cache configuration under either a closed loop (Clients issue queries
// back to back) or an open loop (Arrival requests/second regardless of
// completions — the overload case where the policies diverge).
type simScenario struct {
	Name     string
	Policy   server.AdmissionPolicy
	Cache    int     // result cache capacity; 0 = no-cache baseline
	Clients  int     // closed-loop concurrency (when Arrival == 0)
	Arrival  float64 // open-loop arrivals/second (0 = closed loop)
	Capacity int     // concurrent solve slots
	Queue    int     // cap-policy queue depth beyond the slots
	Queries  int

	// Dataset and workload shape. The closed-loop rows use fast warm EPT
	// serving (the throughput story); the open-loop rows use LP-CTA, whose
	// multi-millisecond solves let a fixed arrival rate genuinely outrun
	// the two solve slots (the overload story).
	Dist       rrq.DistType
	N, D       int
	Algo       rrq.Algorithm
	KMin, KMax int
	Eps        []float64
}

// simBenchResult is the JSON record of one simulation scenario: the
// configuration plus the simulator's aggregate (per-policy p50/p99 latency,
// shed rate, cache hits and solved-per-second throughput).
type simBenchResult struct {
	Name     string  `json:"name"`
	Cache    int     `json:"cache"`
	Clients  int     `json:"clients"`
	Arrival  float64 `json:"arrival_per_sec"`
	Capacity int     `json:"capacity"`
	Queue    int     `json:"queue"`
	sim.Report
}

// anytimeBenchResult is one point of the volume-error-vs-latency curve: the
// anytime tier cut at a fixed sample budget, compared against the exact
// region for the same queries. Volume error is measured with a fixed-seed
// Monte-Carlo estimate shared between the exact and anytime regions, so the
// per-point membership comparison is paired: the anytime region is a subset
// of the exact one, which makes volume_error_* deterministic for a given
// seed, non-negative, and non-increasing along the budget ladder — the
// machine-independent signals benchdiff gates on. ns/query is informational.
type anytimeBenchResult struct {
	Name        string  `json:"name"`
	Curve       string  `json:"curve"` // groups the rows of one budget ladder
	N           int     `json:"n"`
	D           int     `json:"d"`
	K           int     `json:"k"`
	Eps         float64 `json:"eps"`
	Queries     int     `json:"queries"`
	Samples     int     `json:"samples"`      // full sample stream length
	Budget      int     `json:"budget"`       // sample budget the construction was cut at
	SamplesUsed int     `json:"samples_used"` // max over queries
	Cut         bool    `json:"cut"`
	NsPerQuery  int64   `json:"ns_per_query"`
	PiecesAvg   float64 `json:"pieces_avg"`
	RhoBound    float64 `json:"rho_bound"`   // Lemma 5.10 ρ, max over queries
	ErrorBound  float64 `json:"error_bound"` // the bound benchdiff holds volume_error_max to
	VolErrMean  float64 `json:"volume_error_mean"`
	VolErrMax   float64 `json:"volume_error_max"`
}

// simSuite returns the serving scenario matrix over one shared workload:
// closed-loop throughput rows with and without the cache (the no-cache rows
// are the baseline the warm-cache qps is read against), then the same
// open-loop overload replayed under both admission policies × both cache
// settings, which is where shed rate and tail latency separate them.
func simSuite(full bool) []simScenario {
	mul := 1
	if full {
		mul = 4
	}
	q := 96 * mul
	cap8 := runtime.GOMAXPROCS(0)
	if cap8 > 8 {
		cap8 = 8
	}
	var out []simScenario
	for _, cache := range []int{0, 1024} {
		out = append(out, simScenario{
			Name:   fmt.Sprintf("closed-always-cache%d", cache),
			Policy: server.AdmitAlways,
			Cache:  cache, Clients: cap8 * 2, Capacity: cap8, Queries: q,
			Dist: rrq.Independent, N: 2000, D: 3, Algo: rrq.EPTAlgo,
			KMin: 3, KMax: 8, Eps: []float64{0.05, 0.1, 0.2},
		})
	}
	for _, p := range []server.AdmissionPolicy{server.AdmitAlways, server.AdmitCap} {
		for _, cache := range []int{0, 1024} {
			out = append(out, simScenario{
				Name:   fmt.Sprintf("open-%s-cache%d", p, cache),
				Policy: p,
				Cache:  cache, Arrival: 20000, Capacity: 2, Queue: 4, Queries: q,
				Dist: rrq.Independent, N: 300, D: 3, Algo: rrq.LPCTAAlgo,
				KMin: 5, KMax: 8, Eps: []float64{0.1, 0.2},
			})
		}
	}
	return out
}

// runSimScenarios replays one seeded mixed-(k, ε) workload through every
// serving scenario. Each scenario gets a freshly built index so cache state
// never leaks between rows.
func runSimScenarios(full bool, seed int64) ([]simBenchResult, error) {
	var out []simBenchResult
	for _, sc := range simSuite(full) {
		ds := rrq.SyntheticDataset(sc.Dist, sc.N, sc.D, seed)
		w := sim.Workload{
			Queries: sc.Queries, KMin: sc.KMin, KMax: sc.KMax,
			EpsLevels: sc.Eps, Repeat: 0.5, Seed: seed,
		}
		opts := []rrq.Option{rrq.WithAlgorithm(sc.Algo)}
		if sc.Cache > 0 {
			opts = append(opts, rrq.WithResultCache(sc.Cache))
		}
		ix, err := rrq.BuildIndex(ds, opts...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rep, err := sim.Run(context.Background(), sim.Config{
			Index:       ix,
			Admission:   server.NewAdmission(sc.Policy, sc.Capacity, sc.Queue),
			Queries:     w.Generate(ds),
			Clients:     sc.Clients,
			ArrivalRate: sc.Arrival,
			ArrivalSeed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		out = append(out, simBenchResult{
			Name: sc.Name, Cache: sc.Cache, Clients: sc.Clients,
			Arrival: sc.Arrival, Capacity: sc.Capacity, Queue: sc.Queue,
			Report: rep,
		})
	}
	return out, nil
}

// runAnytimeScenarios traces the anytime tier's accuracy/latency trade-off:
// one 4-d workload solved exactly (the reference), then re-solved with the
// progressive A-PC construction cut at an ascending ladder of sample budgets.
// All regions — exact and anytime — are measured with the same fixed-seed
// Monte-Carlo sample set, so each anytime region (a subset of the exact one)
// loses exactly the sample points it fails to cover and the error columns are
// reproducible across machines.
func runAnytimeScenarios(full bool, seed int64) ([]anytimeBenchResult, error) {
	mul := 1
	if full {
		mul = 4
	}
	const (
		curve    = "anytime-5d"
		d        = 5
		k        = 3
		eps      = 0.05
		samples  = 32 // full anytime sample stream; budgets below cut it
		measSeed = 0xA11B2
		measN    = 4000
		minVol   = 0.02 // queries below this exact volume show no curve
	)
	n := 400 * mul
	want := 4 * mul
	ds := rrq.SyntheticDataset(rrq.Anticorrelated, n, d, seed)
	ctx := context.Background()
	// Random preferences mostly hit near-empty regions; keep only candidates
	// whose exact region has measurable volume, so the budget ladder traces a
	// real error curve instead of 0 − 0 at every cut. The filter is a pure
	// function of the seed, so the kept query set is reproducible.
	var queries []rrq.Query
	var exact []float64
	for cand := 0; cand < 16*want && len(queries) < want; cand++ {
		q := rrq.Query{Q: ds.RandomQuery(seed + 100 + int64(cand)), K: k, Epsilon: eps}
		res, err := rrq.SolveContext(ctx, ds, q, rrq.WithAlgorithm(rrq.EPTAlgo), rrq.WithSeed(seed))
		if err != nil {
			return nil, fmt.Errorf("%s exact reference candidate %d: %w", curve, cand, err)
		}
		if v := res.Region.MeasureWithSeed(measSeed, measN); v >= minVol {
			queries = append(queries, q)
			exact = append(exact, v)
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("%s: no candidate query reached exact volume %v", curve, minVol)
	}
	qn := len(queries)
	var out []anytimeBenchResult
	for _, budget := range []int{2, 4, 8, 16, samples} {
		row := anytimeBenchResult{
			Name: fmt.Sprintf("%s-s%02d", curve, budget), Curve: curve,
			N: n, D: d, K: k, Eps: eps, Queries: qn,
			Samples: samples, Budget: budget,
		}
		var elapsed time.Duration
		var pieces int
		for i, q := range queries {
			res, err := rrq.SolveContext(ctx, ds, q,
				rrq.WithAnytimeSamples(budget), rrq.WithSamples(samples), rrq.WithSeed(seed))
			if err != nil {
				return nil, fmt.Errorf("%s query %d: %w", row.Name, i, err)
			}
			if res.Tier != rrq.TierAnytime || res.Accuracy == nil {
				return nil, fmt.Errorf("%s query %d: tier %v accuracy %v, want anytime with accuracy", row.Name, i, res.Tier, res.Accuracy)
			}
			e := exact[i] - res.Region.MeasureWithSeed(measSeed, measN)
			row.VolErrMean += e
			if e > row.VolErrMax {
				row.VolErrMax = e
			}
			acc := res.Accuracy
			if acc.SamplesUsed > row.SamplesUsed {
				row.SamplesUsed = acc.SamplesUsed
			}
			if acc.RhoBound > row.RhoBound {
				row.RhoBound = acc.RhoBound
			}
			row.Cut = acc.Cut
			elapsed += res.Elapsed
			pieces += res.Region.NumPartitions()
		}
		row.VolErrMean /= float64(qn)
		row.ErrorBound = row.RhoBound
		row.NsPerQuery = elapsed.Nanoseconds() / int64(qn)
		row.PiecesAvg = float64(pieces) / float64(qn)
		out = append(out, row)
	}
	return out, nil
}

// indexSuite returns the index scenario list, sized like benchSuite.
func indexSuite(full bool) []indexScenario {
	mul := 1
	if full {
		mul = 4
	}
	return []indexScenario{
		{Name: "index-2d", Dist: rrq.Independent, N: 5000 * mul, D: 2, Algo: rrq.SweepingAlgo, K: 10, Eps: 0.1, Queries: 16 * mul, Rounds: 3},
		{Name: "index-3d", Dist: rrq.Independent, N: 2000 * mul, D: 3, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Rounds: 3},
		{Name: "index-4d", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 4 * mul, Rounds: 3},
	}
}

// benchSuite returns the fixed scenario list. Quick scale keeps the whole
// suite in CI-smoke territory (a few seconds); -full multiplies dataset and
// batch sizes toward the paper's scale.
func benchSuite(full bool) []benchScenario {
	mul := 1
	if full {
		mul = 4
	}
	return []benchScenario{
		{Name: "sweeping-2d", Dist: rrq.Independent, N: 5000 * mul, D: 2, Algo: rrq.SweepingAlgo, K: 10, Eps: 0.1, Queries: 32 * mul},
		{Name: "ept-3d", Dist: rrq.Independent, N: 2000 * mul, D: 3, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 16 * mul},
		{Name: "ept-4d", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul},
		{Name: "ept-4d-serial", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Workers: 1},
		// Intra-query parallelism: one query at a time, the worker pool
		// inside the solve. Paired with the -serial row above / below for
		// the latency speedup figure.
		{Name: "ept-4d-intra8", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Workers: 1, Intra: 8},
		{Name: "ept-5d-serial", Dist: rrq.Anticorrelated, N: 400 * mul, D: 5, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 4 * mul, Workers: 1},
		{Name: "ept-5d-intra8", Dist: rrq.Anticorrelated, N: 400 * mul, D: 5, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 4 * mul, Workers: 1, Intra: 8},
		{Name: "apc-4d", Dist: rrq.Independent, N: 2000 * mul, D: 4, Algo: rrq.APCAlgo, K: 5, Eps: 0.1, Queries: 8 * mul},
		{Name: "apc-4d-intra8", Dist: rrq.Independent, N: 2000 * mul, D: 4, Algo: rrq.APCAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Workers: 1, Intra: 8},
		{Name: "lpcta-3d", Dist: rrq.Independent, N: 150 * mul, D: 3, Algo: rrq.LPCTAAlgo, K: 3, Eps: 0.1, Queries: 4 * mul},
	}
}

// runBenchJSON runs the solve benchmark suite through the public batch API
// with metrics enabled and writes the aggregate as machine-readable JSON —
// the artifact CI uploads for cross-commit performance tracking.
func runBenchJSON(path string, full bool, seed int64, cpus []int) error {
	if seed == 0 {
		seed = 42
	}
	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Full:       full,
		Seed:       seed,
	}
	for _, sc := range benchSuite(full) {
		ds := rrq.SyntheticDataset(sc.Dist, sc.N, sc.D, seed)
		queries := make([]rrq.Query, sc.Queries)
		for i := range queries {
			queries[i] = rrq.Query{Q: ds.RandomQuery(seed + int64(i)), K: sc.K, Epsilon: sc.Eps}
		}
		reg := rrq.NewRegistry()
		// Mallocs/TotalAlloc deltas around the batch give allocs and bytes
		// per query; a GC fence before the first read keeps concurrent
		// sweep work of the previous scenario out of the window.
		runtime.GC()
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		report, err := rrq.SolveBatch(context.Background(), ds, queries,
			rrq.WithAlgorithm(sc.Algo), rrq.WithWorkers(sc.Workers),
			rrq.WithIntraQueryWorkers(sc.Intra),
			rrq.WithSeed(seed), rrq.WithMetrics(reg))
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		runtime.ReadMemStats(&msAfter)
		gmp := runtime.GOMAXPROCS(0)
		res := benchResult{
			Name:        sc.Name,
			Algo:        sc.Algo.String(),
			N:           sc.N,
			D:           sc.D,
			K:           sc.K,
			Eps:         sc.Eps,
			Queries:     sc.Queries,
			Workers:     sc.Workers,
			Intra:       sc.Intra,
			GOMAXPROCS:  gmp,
			Note:        parallelismNote(sc.Workers, sc.Intra, gmp),
			Solved:      report.Solved,
			Failed:      report.Failed,
			ElapsedNs:   report.Elapsed.Nanoseconds(),
			QueryTimeNs: report.QueryTime.Nanoseconds(),
			Stats:       report.Agg,
			Phases:      make(map[string]benchPhase, len(report.Phases)),
		}
		if sc.Queries > 0 {
			res.NsPerQuery = report.QueryTime.Nanoseconds() / int64(sc.Queries)
			res.AllocsPerQ = int64(msAfter.Mallocs-msBefore.Mallocs) / int64(sc.Queries)
			res.BytesPerQ = int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / int64(sc.Queries)
		}
		for name, s := range report.Phases {
			res.Phases[name] = benchPhase{
				Count:   s.Count,
				TotalNs: s.Total.Nanoseconds(),
				MinNs:   s.Min.Nanoseconds(),
				MaxNs:   s.Max.Nanoseconds(),
				MeanNs:  s.Mean().Nanoseconds(),
			}
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-16s %-10s n=%-6d d=%d  %d queries in %v (%v/query, %d allocs/query)\n",
			sc.Name, res.Algo, sc.N, sc.D, sc.Queries,
			report.Elapsed.Round(time.Millisecond), time.Duration(res.NsPerQuery).Round(time.Microsecond),
			res.AllocsPerQ)
	}
	if len(cpus) > 0 {
		rows, err := runCPUMatrix(full, seed, cpus)
		if err != nil {
			return err
		}
		rep.CPUMatrix = rows
		for _, r := range rows {
			mode := "independent"
			if r.Shared {
				mode = "shared"
			}
			extra := ""
			if r.Note != "" {
				extra = "  [" + r.Note + "]"
			}
			fmt.Printf("%-16s cpus=%d %-11s %v/query, %d allocs/query, %.2fx vs 1 cpu%s\n",
				r.Name, r.CPUs, mode,
				time.Duration(r.NsPerQuery).Round(time.Microsecond),
				r.AllocsPerQ, r.SpeedupVs1, extra)
		}
	}
	for _, sc := range indexSuite(full) {
		res, err := runIndexScenario(sc, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		rep.Index = append(rep.Index, res)
		fmt.Printf("%-16s %-10s n=%-6d d=%d  build %v  warm %v/query vs cold %v/query (%.1fx)  maintain %v/op\n",
			sc.Name, "index", sc.N, sc.D,
			time.Duration(res.BuildNs).Round(time.Microsecond),
			time.Duration(res.WarmNsPerQuery).Round(time.Microsecond),
			time.Duration(res.ColdNsPerQuery).Round(time.Microsecond),
			res.Speedup,
			time.Duration(res.MaintainNsPerOp).Round(time.Microsecond))
	}
	sims, err := runSimScenarios(full, seed)
	if err != nil {
		return err
	}
	rep.Sim = sims
	for _, s := range sims {
		fmt.Printf("%-24s policy=%-6s cache=%-5d p50 %v  p99 %v  shed %.0f%%  %d+%d cache hits  %.0f solved/s\n",
			s.Name, s.Policy, s.Cache,
			time.Duration(s.P50Ns).Round(time.Microsecond),
			time.Duration(s.P99Ns).Round(time.Microsecond),
			100*s.ShedRate, s.CacheHits, s.CacheBounds, s.QPS)
	}
	anytime, err := runAnytimeScenarios(full, seed)
	if err != nil {
		return err
	}
	rep.Anytime = anytime
	for _, a := range anytime {
		fmt.Printf("%-16s budget=%-3d used=%-3d cut=%-5v %v/query  vol-err mean %.4f max %.4f (ρ bound %.3f)\n",
			a.Name, a.Budget, a.SamplesUsed, a.Cut,
			time.Duration(a.NsPerQuery).Round(time.Microsecond),
			a.VolErrMean, a.VolErrMax, a.RhoBound)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runIndexScenario times one index scenario: the one-time build, the query
// stream served warm from the snapshot (repeated rounds exercise the shared
// plane storage) and cold through full per-query preprocessing, and an
// interleaved Insert/Delete maintenance stream.
func runIndexScenario(sc indexScenario, seed int64) (indexBenchResult, error) {
	ctx := context.Background()
	ds := rrq.SyntheticDataset(sc.Dist, sc.N, sc.D, seed)
	queries := make([]rrq.Query, sc.Queries)
	for i := range queries {
		queries[i] = rrq.Query{Q: ds.RandomQuery(seed + int64(i)), K: sc.K, Epsilon: sc.Eps}
	}
	res := indexBenchResult{Name: sc.Name, N: sc.N, D: sc.D, K: sc.K, Eps: sc.Eps, Queries: sc.Queries, Rounds: sc.Rounds}

	start := time.Now()
	ix, err := rrq.BuildIndex(ds, rrq.WithAlgorithm(sc.Algo))
	if err != nil {
		return res, err
	}
	res.BuildNs = time.Since(start).Nanoseconds()

	total := sc.Queries * sc.Rounds
	start = time.Now()
	for r := 0; r < sc.Rounds; r++ {
		for _, q := range queries {
			if _, err := ix.SolveContext(ctx, q); err != nil {
				return res, err
			}
		}
	}
	warm := time.Since(start)

	start = time.Now()
	for r := 0; r < sc.Rounds; r++ {
		for _, q := range queries {
			if _, err := rrq.SolveContext(ctx, ds, q, rrq.WithAlgorithm(sc.Algo), rrq.WithSkybandPrefilter(true)); err != nil {
				return res, err
			}
		}
	}
	cold := time.Since(start)

	res.WarmNsPerQuery = warm.Nanoseconds() / int64(total)
	res.ColdNsPerQuery = cold.Nanoseconds() / int64(total)
	if warm > 0 {
		res.WarmQPS = float64(total) / warm.Seconds()
	}
	if cold > 0 {
		res.ColdQPS = float64(total) / cold.Seconds()
	}
	if warm > 0 && cold > 0 {
		res.Speedup = float64(cold.Nanoseconds()) / float64(warm.Nanoseconds())
	}

	// Maintenance: alternate fresh inserts and deletes, each publishing a new
	// epoch with delta-maintained dominator counts.
	const ops = 100
	start = time.Now()
	for i := 0; i < ops; i++ {
		if i%2 == 0 {
			if _, err := ix.Insert(ds.RandomQuery(seed + int64(1000+i))); err != nil {
				return res, err
			}
		} else {
			if _, err := ix.Delete(i % ix.Len()); err != nil {
				return res, err
			}
		}
	}
	res.MaintainOps = ops
	res.MaintainNsPerOp = time.Since(start).Nanoseconds() / ops
	return res, nil
}

// parallelismNote flags configurations whose requested parallelism exceeds
// what the runtime will actually schedule, so a row can never silently claim
// multi-core numbers it did not get. workers ≤ 0 means GOMAXPROCS (never
// oversubscribed by itself); intra ≤ 1 means serial solves.
func parallelismNote(workers, intra, gomaxprocs int) string {
	if workers <= 0 {
		workers = gomaxprocs
	}
	if intra < 1 {
		intra = 1
	}
	if workers*intra > gomaxprocs {
		return fmt.Sprintf("requested parallelism %d (workers %d x intra %d) exceeds GOMAXPROCS %d; solves time-share cores", workers*intra, workers, intra, gomaxprocs)
	}
	return ""
}

// matrixScenario is one dataset shape the multi-core matrix runs over.
type matrixScenario struct {
	Name string
	Dist rrq.DistType
	N, D int
	KMax int
	Eps  []float64
}

// matrixQueries builds the batch workload the sharing layer targets: a few
// query points, each asked over a range of ranks and two ε values (nested
// and sibling plane groups), then a 50% tail of exact repeats — the shape
// the serving simulator also uses (sim.Workload Repeat: 0.5) — so the dedup
// tier participates the way it does in a live query stream.
func matrixQueries(ds *rrq.Dataset, sc matrixScenario, seed int64) []rrq.Query {
	var queries []rrq.Query
	for i := 0; i < 4; i++ {
		qp := ds.RandomQuery(seed + int64(100+i))
		for _, eps := range sc.Eps {
			for k := 1; k <= sc.KMax; k++ {
				queries = append(queries, rrq.Query{Q: qp, K: k, Epsilon: eps})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed + 7))
	distinct := len(queries)
	for i := 0; i < distinct/2; i++ {
		queries = append(queries, queries[rng.Intn(distinct)])
	}
	return queries
}

// runCPUMatrix runs the shared-vs-independent comparison at each requested
// GOMAXPROCS. Both modes measure the one-shot serving pattern — dataset
// preprocessing plus all solves — so the batch engine's amortization
// (one capped skyband pass, per-(point, ε) plane groups, dedup, arenas)
// shows against its replacement: a fresh Prepare with an independent Solve
// call per query, fanned over the same number of workers. GOMAXPROCS is
// restored on return.
func runCPUMatrix(full bool, seed int64, cpus []int) ([]cpuMatrixRow, error) {
	mul := 1
	if full {
		mul = 4
	}
	scenarios := []matrixScenario{
		{Name: "batch-ept-3d", Dist: rrq.Independent, N: 2000 * mul, D: 3, KMax: 8, Eps: []float64{0.05, 0.12}},
		{Name: "batch-ept-4d", Dist: rrq.Independent, N: 1500 * mul, D: 4, KMax: 4, Eps: []float64{0.1, 0.2}},
	}
	rounds := 4 * mul
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var rows []cpuMatrixRow
	// ns/query of the cpus=1 row, per scenario and sharing flag, for SpeedupVs1.
	type baseKey struct {
		name   string
		shared bool
	}
	base := make(map[baseKey]int64)
	for _, sc := range scenarios {
		ds := rrq.SyntheticDataset(sc.Dist, sc.N, sc.D, seed)
		queries := matrixQueries(ds, sc, seed)
		for _, c := range cpus {
			runtime.GOMAXPROCS(c)
			for _, shared := range []bool{true, false} {
				row, err := runMatrixCell(ds, queries, sc, c, shared, rounds, seed)
				if err != nil {
					return nil, fmt.Errorf("%s cpus=%d shared=%v: %w", sc.Name, c, shared, err)
				}
				k := baseKey{sc.Name, shared}
				if c == 1 {
					base[k] = row.NsPerQuery
				}
				if b, ok := base[k]; ok && b > 0 && row.NsPerQuery > 0 {
					row.SpeedupVs1 = float64(b) / float64(row.NsPerQuery)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// runMatrixCell times one matrix cell: `rounds` one-shot servings of the
// batch at the current GOMAXPROCS, each paying the dataset preprocessing and
// every solve. The shared mode dispatches through SolveBatch with sharing
// and dedup on; the independent mode answers each query with its own Solve
// call over a fresh Prepare, fanned over the same worker count. One untimed
// warm-up round lets pools and caches settle; allocation deltas are read
// around the timed window.
func runMatrixCell(ds *rrq.Dataset, queries []rrq.Query, sc matrixScenario, cpus int, shared bool, rounds int, seed int64) (cpuMatrixRow, error) {
	gmp := runtime.GOMAXPROCS(0)
	ctx := context.Background()
	opts := []rrq.Option{
		rrq.WithAlgorithm(rrq.EPTAlgo), rrq.WithSkybandPrefilter(true),
		rrq.WithWorkers(cpus), rrq.WithSeed(seed), rrq.WithBatchSharing(shared),
	}
	var deduped int
	runOnce := func() error {
		if shared {
			rep, err := rrq.SolveBatch(ctx, ds, queries, opts...)
			if err != nil {
				return err
			}
			for _, r := range rep.Results {
				if r.Err != nil {
					return r.Err
				}
			}
			deduped = rep.Deduped
			return nil
		}
		p, err := rrq.Prepare(ds, opts...)
		if err != nil {
			return err
		}
		errs := make([]error, len(queries))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < cpus; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(queries) {
						return
					}
					_, errs[i] = p.Solve(ctx, queries[i])
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := runOnce(); err != nil {
		return cpuMatrixRow{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if err := runOnce(); err != nil {
			return cpuMatrixRow{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	total := int64(rounds) * int64(len(queries))
	row := cpuMatrixRow{
		Name: sc.Name, CPUs: cpus, GOMAXPROCS: gmp, Workers: cpus, Shared: shared,
		N: sc.N, D: sc.D, Queries: len(queries), Rounds: rounds,
		Deduped:    deduped,
		NsPerQuery: elapsed.Nanoseconds() / total,
		AllocsPerQ: int64(after.Mallocs-before.Mallocs) / total,
		BytesPerQ:  int64(after.TotalAlloc-before.TotalAlloc) / total,
	}
	if cpus > runtime.NumCPU() {
		row.Note = fmt.Sprintf("gomaxprocs %d exceeds the machine's %d cpus; speedup_vs_1 is not meaningful here", cpus, runtime.NumCPU())
	}
	return row, nil
}
