// Command rrqbench regenerates the paper's evaluation figures (Figures
// 7–17) as printed tables. By default every experiment runs at quick scale;
// -full switches to the paper's parameters.
//
// Usage:
//
//	rrqbench                        # run everything, quick scale
//	rrqbench -exp fig10a            # one experiment
//	rrqbench -exp fig9a,fig9b -full
//	rrqbench -list
//	rrqbench -benchjson BENCH_solve.json   # machine-readable solve benchmark
//	rrqbench -benchjson BENCH_solve.json -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rrq"
	"rrq/internal/expt"
	"rrq/internal/server"
	"rrq/internal/sim"
)

// summaryReference picks the proposed algorithm to normalize speedups to:
// Sweeping when present, otherwise E-PT.
func summaryReference(t *expt.Table) string {
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if c.Algo == "Sweeping" {
				return "Sweeping"
			}
		}
	}
	return "E-PT"
}

// writeCSV writes one table as <dir>/<table-id>.csv, creating dir.
func writeCSV(dir string, t *expt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		full       = flag.Bool("full", false, "use the paper's full-scale parameters")
		seed       = flag.Int64("seed", 0, "override the experiment seed (0 = default)")
		repeats    = flag.Int("repeats", 0, "query points averaged per cell (0 = default)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		csvDir     = flag.String("csv", "", "also write each table as <dir>/<table-id>.csv")
		budget     = flag.Duration("budget", 0, "per-cell wall-clock budget (0 = default)")
		timeout    = flag.Duration("timeout", 0, "alias of -budget: per-cell wall-clock budget (0 = default)")
		workers    = flag.Int("workers", 0, "worker count for the batch experiment (0 = sweep defaults)")
		benchJSON  = flag.String("benchjson", "", "run the solve benchmark suite and write machine-readable JSON to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this path (go tool pprof)")
	)
	flag.Parse()
	if *budget == 0 {
		*budget = *timeout
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rrqbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rrqbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rrqbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the profile reflects live + cumulative allocs
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "rrqbench:", err)
			}
		}()
	}

	if *list {
		for _, id := range expt.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *full, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "rrqbench:", err)
			os.Exit(1)
		}
		return
	}

	sc := expt.Scale{Full: *full, Seed: *seed, Repeats: *repeats, CellBudget: *budget, Workers: *workers}
	ids := expt.IDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := expt.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rrqbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := runner(sc)
		for _, t := range tables {
			t.Print(os.Stdout)
			expt.PrintSummary(os.Stdout, t, summaryReference(t))
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, "rrqbench:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// benchScenario is one solve-benchmark configuration: a synthetic dataset
// and a batch of queries answered by one algorithm.
type benchScenario struct {
	Name    string
	Dist    rrq.DistType
	N, D    int
	Algo    rrq.Algorithm
	K       int
	Eps     float64
	Queries int
	Workers int // batch (inter-query) workers; 0 = GOMAXPROCS
	Intra   int // intra-query workers; 0/1 = serial solves
}

// benchPhase is the JSON form of one phase timer.
type benchPhase struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
	MeanNs  int64 `json:"mean_ns"`
}

// benchResult is the JSON record of one scenario run.
type benchResult struct {
	Name        string                `json:"name"`
	Algo        string                `json:"algo"`
	N           int                   `json:"n"`
	D           int                   `json:"d"`
	K           int                   `json:"k"`
	Eps         float64               `json:"eps"`
	Queries     int                   `json:"queries"`
	Workers     int                   `json:"workers"`
	Intra       int                   `json:"intra_workers"`
	Solved      int                   `json:"solved"`
	Failed      int                   `json:"failed"`
	ElapsedNs   int64                 `json:"elapsed_ns"`
	QueryTimeNs int64                 `json:"query_time_ns"`
	NsPerQuery  int64                 `json:"ns_per_query"`
	AllocsPerQ  int64                 `json:"allocs_per_query"`
	BytesPerQ   int64                 `json:"bytes_per_query"`
	Stats       rrq.Stats             `json:"stats"`
	Phases      map[string]benchPhase `json:"phases"`
}

// benchReport is the top-level BENCH_solve.json document.
type benchReport struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Full       bool               `json:"full"`
	Seed       int64              `json:"seed"`
	Results    []benchResult      `json:"results"`
	Index      []indexBenchResult `json:"index_results"`
	Sim        []simBenchResult   `json:"sim_results"`
}

// indexScenario is one index-serving benchmark configuration: the dataset an
// index is built over and the query stream replayed twice — warm through the
// snapshot, cold through per-query preprocessing.
type indexScenario struct {
	Name    string
	Dist    rrq.DistType
	N, D    int
	Algo    rrq.Algorithm
	K       int
	Eps     float64
	Queries int
	Rounds  int // times each query repeats (warm rounds hit the plane cache)
}

// indexBenchResult is the JSON record of one index scenario: the one-time
// build cost, then warm (snapshot-served) vs cold (per-query validation +
// skyband + plane classification) cost over the identical query stream, plus
// the incremental-maintenance cost of an interleaved Insert/Delete stream.
type indexBenchResult struct {
	Name            string  `json:"name"`
	N               int     `json:"n"`
	D               int     `json:"d"`
	K               int     `json:"k"`
	Eps             float64 `json:"eps"`
	Queries         int     `json:"queries"`
	Rounds          int     `json:"rounds"`
	BuildNs         int64   `json:"build_ns"`
	WarmNsPerQuery  int64   `json:"warm_ns_per_query"`
	ColdNsPerQuery  int64   `json:"cold_ns_per_query"`
	WarmQPS         float64 `json:"warm_queries_per_sec"`
	ColdQPS         float64 `json:"cold_queries_per_sec"`
	Speedup         float64 `json:"speedup"`
	MaintainOps     int     `json:"maintain_ops"`
	MaintainNsPerOp int64   `json:"maintain_ns_per_op"`
}

// simScenario is one serving-stack simulation: the admission policy and
// cache configuration under either a closed loop (Clients issue queries
// back to back) or an open loop (Arrival requests/second regardless of
// completions — the overload case where the policies diverge).
type simScenario struct {
	Name     string
	Policy   server.AdmissionPolicy
	Cache    int     // result cache capacity; 0 = no-cache baseline
	Clients  int     // closed-loop concurrency (when Arrival == 0)
	Arrival  float64 // open-loop arrivals/second (0 = closed loop)
	Capacity int     // concurrent solve slots
	Queue    int     // cap-policy queue depth beyond the slots
	Queries  int

	// Dataset and workload shape. The closed-loop rows use fast warm EPT
	// serving (the throughput story); the open-loop rows use LP-CTA, whose
	// multi-millisecond solves let a fixed arrival rate genuinely outrun
	// the two solve slots (the overload story).
	Dist       rrq.DistType
	N, D       int
	Algo       rrq.Algorithm
	KMin, KMax int
	Eps        []float64
}

// simBenchResult is the JSON record of one simulation scenario: the
// configuration plus the simulator's aggregate (per-policy p50/p99 latency,
// shed rate, cache hits and solved-per-second throughput).
type simBenchResult struct {
	Name     string  `json:"name"`
	Cache    int     `json:"cache"`
	Clients  int     `json:"clients"`
	Arrival  float64 `json:"arrival_per_sec"`
	Capacity int     `json:"capacity"`
	Queue    int     `json:"queue"`
	sim.Report
}

// simSuite returns the serving scenario matrix over one shared workload:
// closed-loop throughput rows with and without the cache (the no-cache rows
// are the baseline the warm-cache qps is read against), then the same
// open-loop overload replayed under both admission policies × both cache
// settings, which is where shed rate and tail latency separate them.
func simSuite(full bool) []simScenario {
	mul := 1
	if full {
		mul = 4
	}
	q := 96 * mul
	cap8 := runtime.GOMAXPROCS(0)
	if cap8 > 8 {
		cap8 = 8
	}
	var out []simScenario
	for _, cache := range []int{0, 1024} {
		out = append(out, simScenario{
			Name:   fmt.Sprintf("closed-always-cache%d", cache),
			Policy: server.AdmitAlways,
			Cache:  cache, Clients: cap8 * 2, Capacity: cap8, Queries: q,
			Dist: rrq.Independent, N: 2000, D: 3, Algo: rrq.EPTAlgo,
			KMin: 3, KMax: 8, Eps: []float64{0.05, 0.1, 0.2},
		})
	}
	for _, p := range []server.AdmissionPolicy{server.AdmitAlways, server.AdmitCap} {
		for _, cache := range []int{0, 1024} {
			out = append(out, simScenario{
				Name:   fmt.Sprintf("open-%s-cache%d", p, cache),
				Policy: p,
				Cache:  cache, Arrival: 20000, Capacity: 2, Queue: 4, Queries: q,
				Dist: rrq.Independent, N: 300, D: 3, Algo: rrq.LPCTAAlgo,
				KMin: 5, KMax: 8, Eps: []float64{0.1, 0.2},
			})
		}
	}
	return out
}

// runSimScenarios replays one seeded mixed-(k, ε) workload through every
// serving scenario. Each scenario gets a freshly built index so cache state
// never leaks between rows.
func runSimScenarios(full bool, seed int64) ([]simBenchResult, error) {
	var out []simBenchResult
	for _, sc := range simSuite(full) {
		ds := rrq.SyntheticDataset(sc.Dist, sc.N, sc.D, seed)
		w := sim.Workload{
			Queries: sc.Queries, KMin: sc.KMin, KMax: sc.KMax,
			EpsLevels: sc.Eps, Repeat: 0.5, Seed: seed,
		}
		opts := []rrq.Option{rrq.WithAlgorithm(sc.Algo)}
		if sc.Cache > 0 {
			opts = append(opts, rrq.WithResultCache(sc.Cache))
		}
		ix, err := rrq.BuildIndex(ds, opts...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rep, err := sim.Run(context.Background(), sim.Config{
			Index:       ix,
			Admission:   server.NewAdmission(sc.Policy, sc.Capacity, sc.Queue),
			Queries:     w.Generate(ds),
			Clients:     sc.Clients,
			ArrivalRate: sc.Arrival,
			ArrivalSeed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		out = append(out, simBenchResult{
			Name: sc.Name, Cache: sc.Cache, Clients: sc.Clients,
			Arrival: sc.Arrival, Capacity: sc.Capacity, Queue: sc.Queue,
			Report: rep,
		})
	}
	return out, nil
}

// indexSuite returns the index scenario list, sized like benchSuite.
func indexSuite(full bool) []indexScenario {
	mul := 1
	if full {
		mul = 4
	}
	return []indexScenario{
		{Name: "index-2d", Dist: rrq.Independent, N: 5000 * mul, D: 2, Algo: rrq.SweepingAlgo, K: 10, Eps: 0.1, Queries: 16 * mul, Rounds: 3},
		{Name: "index-3d", Dist: rrq.Independent, N: 2000 * mul, D: 3, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Rounds: 3},
		{Name: "index-4d", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 4 * mul, Rounds: 3},
	}
}

// benchSuite returns the fixed scenario list. Quick scale keeps the whole
// suite in CI-smoke territory (a few seconds); -full multiplies dataset and
// batch sizes toward the paper's scale.
func benchSuite(full bool) []benchScenario {
	mul := 1
	if full {
		mul = 4
	}
	return []benchScenario{
		{Name: "sweeping-2d", Dist: rrq.Independent, N: 5000 * mul, D: 2, Algo: rrq.SweepingAlgo, K: 10, Eps: 0.1, Queries: 32 * mul},
		{Name: "ept-3d", Dist: rrq.Independent, N: 2000 * mul, D: 3, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 16 * mul},
		{Name: "ept-4d", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul},
		{Name: "ept-4d-serial", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Workers: 1},
		// Intra-query parallelism: one query at a time, the worker pool
		// inside the solve. Paired with the -serial row above / below for
		// the latency speedup figure.
		{Name: "ept-4d-intra8", Dist: rrq.Anticorrelated, N: 1000 * mul, D: 4, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Workers: 1, Intra: 8},
		{Name: "ept-5d-serial", Dist: rrq.Anticorrelated, N: 400 * mul, D: 5, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 4 * mul, Workers: 1},
		{Name: "ept-5d-intra8", Dist: rrq.Anticorrelated, N: 400 * mul, D: 5, Algo: rrq.EPTAlgo, K: 5, Eps: 0.1, Queries: 4 * mul, Workers: 1, Intra: 8},
		{Name: "apc-4d", Dist: rrq.Independent, N: 2000 * mul, D: 4, Algo: rrq.APCAlgo, K: 5, Eps: 0.1, Queries: 8 * mul},
		{Name: "apc-4d-intra8", Dist: rrq.Independent, N: 2000 * mul, D: 4, Algo: rrq.APCAlgo, K: 5, Eps: 0.1, Queries: 8 * mul, Workers: 1, Intra: 8},
		{Name: "lpcta-3d", Dist: rrq.Independent, N: 150 * mul, D: 3, Algo: rrq.LPCTAAlgo, K: 3, Eps: 0.1, Queries: 4 * mul},
	}
}

// runBenchJSON runs the solve benchmark suite through the public batch API
// with metrics enabled and writes the aggregate as machine-readable JSON —
// the artifact CI uploads for cross-commit performance tracking.
func runBenchJSON(path string, full bool, seed int64) error {
	if seed == 0 {
		seed = 42
	}
	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Full:       full,
		Seed:       seed,
	}
	for _, sc := range benchSuite(full) {
		ds := rrq.SyntheticDataset(sc.Dist, sc.N, sc.D, seed)
		queries := make([]rrq.Query, sc.Queries)
		for i := range queries {
			queries[i] = rrq.Query{Q: ds.RandomQuery(seed + int64(i)), K: sc.K, Epsilon: sc.Eps}
		}
		reg := rrq.NewRegistry()
		// Mallocs/TotalAlloc deltas around the batch give allocs and bytes
		// per query; a GC fence before the first read keeps concurrent
		// sweep work of the previous scenario out of the window.
		runtime.GC()
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		report, err := rrq.SolveBatch(context.Background(), ds, queries,
			rrq.WithAlgorithm(sc.Algo), rrq.WithWorkers(sc.Workers),
			rrq.WithIntraQueryWorkers(sc.Intra),
			rrq.WithSeed(seed), rrq.WithMetrics(reg))
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		runtime.ReadMemStats(&msAfter)
		res := benchResult{
			Name:        sc.Name,
			Algo:        sc.Algo.String(),
			N:           sc.N,
			D:           sc.D,
			K:           sc.K,
			Eps:         sc.Eps,
			Queries:     sc.Queries,
			Workers:     sc.Workers,
			Intra:       sc.Intra,
			Solved:      report.Solved,
			Failed:      report.Failed,
			ElapsedNs:   report.Elapsed.Nanoseconds(),
			QueryTimeNs: report.QueryTime.Nanoseconds(),
			Stats:       report.Agg,
			Phases:      make(map[string]benchPhase, len(report.Phases)),
		}
		if sc.Queries > 0 {
			res.NsPerQuery = report.QueryTime.Nanoseconds() / int64(sc.Queries)
			res.AllocsPerQ = int64(msAfter.Mallocs-msBefore.Mallocs) / int64(sc.Queries)
			res.BytesPerQ = int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / int64(sc.Queries)
		}
		for name, s := range report.Phases {
			res.Phases[name] = benchPhase{
				Count:   s.Count,
				TotalNs: s.Total.Nanoseconds(),
				MinNs:   s.Min.Nanoseconds(),
				MaxNs:   s.Max.Nanoseconds(),
				MeanNs:  s.Mean().Nanoseconds(),
			}
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-16s %-10s n=%-6d d=%d  %d queries in %v (%v/query, %d allocs/query)\n",
			sc.Name, res.Algo, sc.N, sc.D, sc.Queries,
			report.Elapsed.Round(time.Millisecond), time.Duration(res.NsPerQuery).Round(time.Microsecond),
			res.AllocsPerQ)
	}
	for _, sc := range indexSuite(full) {
		res, err := runIndexScenario(sc, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		rep.Index = append(rep.Index, res)
		fmt.Printf("%-16s %-10s n=%-6d d=%d  build %v  warm %v/query vs cold %v/query (%.1fx)  maintain %v/op\n",
			sc.Name, "index", sc.N, sc.D,
			time.Duration(res.BuildNs).Round(time.Microsecond),
			time.Duration(res.WarmNsPerQuery).Round(time.Microsecond),
			time.Duration(res.ColdNsPerQuery).Round(time.Microsecond),
			res.Speedup,
			time.Duration(res.MaintainNsPerOp).Round(time.Microsecond))
	}
	sims, err := runSimScenarios(full, seed)
	if err != nil {
		return err
	}
	rep.Sim = sims
	for _, s := range sims {
		fmt.Printf("%-24s policy=%-6s cache=%-5d p50 %v  p99 %v  shed %.0f%%  %d+%d cache hits  %.0f solved/s\n",
			s.Name, s.Policy, s.Cache,
			time.Duration(s.P50Ns).Round(time.Microsecond),
			time.Duration(s.P99Ns).Round(time.Microsecond),
			100*s.ShedRate, s.CacheHits, s.CacheBounds, s.QPS)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runIndexScenario times one index scenario: the one-time build, the query
// stream served warm from the snapshot (repeated rounds exercise the shared
// plane storage) and cold through full per-query preprocessing, and an
// interleaved Insert/Delete maintenance stream.
func runIndexScenario(sc indexScenario, seed int64) (indexBenchResult, error) {
	ctx := context.Background()
	ds := rrq.SyntheticDataset(sc.Dist, sc.N, sc.D, seed)
	queries := make([]rrq.Query, sc.Queries)
	for i := range queries {
		queries[i] = rrq.Query{Q: ds.RandomQuery(seed + int64(i)), K: sc.K, Epsilon: sc.Eps}
	}
	res := indexBenchResult{Name: sc.Name, N: sc.N, D: sc.D, K: sc.K, Eps: sc.Eps, Queries: sc.Queries, Rounds: sc.Rounds}

	start := time.Now()
	ix, err := rrq.BuildIndex(ds, rrq.WithAlgorithm(sc.Algo))
	if err != nil {
		return res, err
	}
	res.BuildNs = time.Since(start).Nanoseconds()

	total := sc.Queries * sc.Rounds
	start = time.Now()
	for r := 0; r < sc.Rounds; r++ {
		for _, q := range queries {
			if _, err := ix.SolveContext(ctx, q); err != nil {
				return res, err
			}
		}
	}
	warm := time.Since(start)

	start = time.Now()
	for r := 0; r < sc.Rounds; r++ {
		for _, q := range queries {
			if _, err := rrq.SolveContext(ctx, ds, q, rrq.WithAlgorithm(sc.Algo), rrq.WithSkybandPrefilter(true)); err != nil {
				return res, err
			}
		}
	}
	cold := time.Since(start)

	res.WarmNsPerQuery = warm.Nanoseconds() / int64(total)
	res.ColdNsPerQuery = cold.Nanoseconds() / int64(total)
	if warm > 0 {
		res.WarmQPS = float64(total) / warm.Seconds()
	}
	if cold > 0 {
		res.ColdQPS = float64(total) / cold.Seconds()
	}
	if warm > 0 && cold > 0 {
		res.Speedup = float64(cold.Nanoseconds()) / float64(warm.Nanoseconds())
	}

	// Maintenance: alternate fresh inserts and deletes, each publishing a new
	// epoch with delta-maintained dominator counts.
	const ops = 100
	start = time.Now()
	for i := 0; i < ops; i++ {
		if i%2 == 0 {
			if _, err := ix.Insert(ds.RandomQuery(seed + int64(1000+i))); err != nil {
				return res, err
			}
		} else {
			if _, err := ix.Delete(i % ix.Len()); err != nil {
				return res, err
			}
		}
	}
	res.MaintainOps = ops
	res.MaintainNsPerOp = time.Since(start).Nanoseconds() / ops
	return res, nil
}
