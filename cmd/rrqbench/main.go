// Command rrqbench regenerates the paper's evaluation figures (Figures
// 7–17) as printed tables. By default every experiment runs at quick scale;
// -full switches to the paper's parameters.
//
// Usage:
//
//	rrqbench                 # run everything, quick scale
//	rrqbench -exp fig10a     # one experiment
//	rrqbench -exp fig9a,fig9b -full
//	rrqbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rrq/internal/expt"
)

// summaryReference picks the proposed algorithm to normalize speedups to:
// Sweeping when present, otherwise E-PT.
func summaryReference(t *expt.Table) string {
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if c.Algo == "Sweeping" {
				return "Sweeping"
			}
		}
	}
	return "E-PT"
}

// writeCSV writes one table as <dir>/<table-id>.csv, creating dir.
func writeCSV(dir string, t *expt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		full    = flag.Bool("full", false, "use the paper's full-scale parameters")
		seed    = flag.Int64("seed", 0, "override the experiment seed (0 = default)")
		repeats = flag.Int("repeats", 0, "query points averaged per cell (0 = default)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csvDir  = flag.String("csv", "", "also write each table as <dir>/<table-id>.csv")
		budget  = flag.Duration("budget", 0, "per-cell wall-clock budget (0 = default)")
		timeout = flag.Duration("timeout", 0, "alias of -budget: per-cell wall-clock budget (0 = default)")
		workers = flag.Int("workers", 0, "worker count for the batch experiment (0 = sweep defaults)")
	)
	flag.Parse()
	if *budget == 0 {
		*budget = *timeout
	}

	if *list {
		for _, id := range expt.IDs() {
			fmt.Println(id)
		}
		return
	}

	sc := expt.Scale{Full: *full, Seed: *seed, Repeats: *repeats, CellBudget: *budget, Workers: *workers}
	ids := expt.IDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := expt.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rrqbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := runner(sc)
		for _, t := range tables {
			t.Print(os.Stdout)
			expt.PrintSummary(os.Stdout, t, summaryReference(t))
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, "rrqbench:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
