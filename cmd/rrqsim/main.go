// Command rrqsim runs the closed-loop (or open-loop) workload simulator
// against an in-process index — the same admission controller and tenant
// meter rrqd deploys, minus HTTP — and prints per-policy latency
// percentiles, shed rate and cache effectiveness.
//
// Usage:
//
//	rrqsim -synthetic indep:2000:2:1 -queries 200 -clients 8
//	rrqsim -synthetic indep:2000:3:1 -policy cap -capacity 2 -queue 4 -arrival 500
//	rrqsim -synthetic indep:2000:2:1 -compare          # policy × cache matrix
//	rrqsim -synthetic indep:2000:2:1 -compare -json -  # machine-readable
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rrq"
	"rrq/internal/server"
	"rrq/internal/sim"
)

func main() {
	var (
		synthetic   = flag.String("synthetic", "", "synthetic dataset spec type:n:d:seed, e.g. indep:2000:2:1")
		real        = flag.String("real", "", "real dataset stand-in spec name:maxN")
		algoStr     = flag.String("algo", "auto", "auto|sweeping|ept|apc|lpcta|brute")
		queries     = flag.Int("queries", 200, "query stream length")
		clients     = flag.Int("clients", 8, "closed-loop client count")
		arrival     = flag.Float64("arrival", 0, "open-loop arrivals/second (0 = closed loop)")
		kmin        = flag.Int("kmin", 2, "minimum query rank")
		kmax        = flag.Int("kmax", 8, "maximum query rank")
		epsStr      = flag.String("eps", "0.05,0.1,0.2", "comma-separated regret tolerance levels")
		repeat      = flag.Float64("repeat", 0.5, "probability a query repeats an earlier one")
		seed        = flag.Int64("seed", 42, "workload seed")
		policyStr   = flag.String("policy", "always", `admission policy: "always" or "cap"`)
		capacity    = flag.Int("capacity", 2, "concurrent solve slots")
		queueLen    = flag.Int("queue", 8, "queue depth beyond the slots before the cap policy sheds")
		cacheN      = flag.Int("cache", 1024, "result cache capacity (0 = no cache)")
		cacheBnd    = flag.Bool("cache-bounds", false, "serve sound inner/outer bounds from cached neighbors")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant refill rate in work units/second (0 = no metering)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant budget burst in work units")
		tenants     = flag.Int("tenants", 4, "synthetic tenant count when metering is on")
		anytime     = flag.Duration("anytime", 0, "degrade shed requests to the anytime tier under this per-solve budget (0 = shed)")
		compare     = flag.Bool("compare", false, "run the full policy × cache matrix instead of one scenario")
		jsonPath    = flag.String("json", "", `write reports as JSON to this path ("-" = stdout)`)
	)
	flag.Parse()

	ds, err := loadDataset(*synthetic, *real)
	fatal(err)
	algo, err := parseAlgo(*algoStr)
	fatal(err)

	var eps []float64
	for _, s := range strings.Split(*epsStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		fatal(err)
		eps = append(eps, v)
	}
	w := sim.Workload{Queries: *queries, KMin: *kmin, KMax: *kmax, EpsLevels: eps, Repeat: *repeat, Seed: *seed}
	stream := w.Generate(ds)

	type scenario struct {
		Name   string                 `json:"name"`
		Policy server.AdmissionPolicy `json:"policy"`
		Cache  int                    `json:"cache"`
	}
	var scenarios []scenario
	if *compare {
		for _, p := range []server.AdmissionPolicy{server.AdmitAlways, server.AdmitCap} {
			for _, c := range []int{0, *cacheN} {
				name := fmt.Sprintf("%s/cache=%d", p, c)
				scenarios = append(scenarios, scenario{Name: name, Policy: p, Cache: c})
			}
		}
	} else {
		p, err := server.ParseAdmissionPolicy(*policyStr)
		fatal(err)
		scenarios = []scenario{{Name: "run", Policy: p, Cache: *cacheN}}
	}

	type record struct {
		scenario
		Report sim.Report `json:"report"`
	}
	var records []record
	for _, sc := range scenarios {
		opts := []rrq.Option{rrq.WithAlgorithm(algo)}
		if sc.Cache > 0 {
			opts = append(opts, rrq.WithResultCache(sc.Cache), rrq.WithCacheBounds(*cacheBnd))
		}
		ix, err := rrq.BuildIndex(ds, opts...)
		fatal(err)
		cfg := sim.Config{
			Index:         ix,
			Admission:     server.NewAdmission(sc.Policy, *capacity, *queueLen),
			Queries:       stream,
			Clients:       *clients,
			ArrivalRate:   *arrival,
			ArrivalSeed:   *seed,
			AnytimeBudget: *anytime,
		}
		if *tenantRate > 0 && *tenantBurst > 0 {
			cfg.Tenants = server.NewTenantBudgets(*tenantRate, *tenantBurst)
			cfg.TenantCount = *tenants
		}
		rep, err := sim.Run(context.Background(), cfg)
		fatal(err)
		records = append(records, record{scenario: sc, Report: rep})
		fmt.Printf("%-16s %s\n", sc.Name, rep)
	}

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			fatal(err)
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(records))
	}
}

// loadDataset resolves exactly one of the two dataset sources.
func loadDataset(synthetic, real string) (*rrq.Dataset, error) {
	switch {
	case synthetic != "" && real != "":
		return nil, errors.New("rrqsim: -synthetic and -real are mutually exclusive")
	case synthetic != "":
		parts := strings.Split(synthetic, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("rrqsim: -synthetic wants type:n:d:seed, got %q", synthetic)
		}
		var t rrq.DistType
		switch parts[0] {
		case "indep":
			t = rrq.Independent
		case "corr":
			t = rrq.Correlated
		case "anti":
			t = rrq.Anticorrelated
		default:
			return nil, fmt.Errorf("rrqsim: unknown distribution %q (want indep|corr|anti)", parts[0])
		}
		n, err1 := strconv.Atoi(parts[1])
		d, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("rrqsim: malformed -synthetic %q", synthetic)
		}
		return rrq.SyntheticDataset(t, n, d, seed), nil
	case real != "":
		name, maxS, ok := strings.Cut(real, ":")
		maxN := 0
		if ok {
			var err error
			if maxN, err = strconv.Atoi(maxS); err != nil {
				return nil, fmt.Errorf("rrqsim: malformed -real %q", real)
			}
		}
		return rrq.RealDataset(name, maxN)
	default:
		return nil, errors.New("rrqsim: one of -synthetic or -real is required")
	}
}

func parseAlgo(s string) (rrq.Algorithm, error) {
	switch strings.ToLower(s) {
	case "auto":
		return rrq.Auto, nil
	case "sweeping", "sweep":
		return rrq.SweepingAlgo, nil
	case "ept":
		return rrq.EPTAlgo, nil
	case "apc":
		return rrq.APCAlgo, nil
	case "lpcta":
		return rrq.LPCTAAlgo, nil
	case "brute":
		return rrq.BruteForceAlgo, nil
	default:
		return 0, fmt.Errorf("rrqsim: unknown algorithm %q", s)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
