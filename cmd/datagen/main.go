// Command datagen writes synthetic and stand-in datasets as CSV, for use
// with cmd/rrq or external tools.
//
// Usage:
//
//	datagen -type Indep -n 10000 -d 4 -seed 1 -o indep.csv
//	datagen -real NBA -o nba.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"rrq/internal/dataset"
)

func main() {
	var (
		typStr  = flag.String("type", "Indep", "synthetic distribution: Indep|Cor|Anti")
		realStr = flag.String("real", "", "real-dataset stand-in: Island|Weather|Car|NBA (overrides -type)")
		n       = flag.Int("n", 10000, "number of points (synthetic) or cap (real; 0 = full size)")
		d       = flag.Int("d", 4, "dimensions (synthetic only)")
		seed    = flag.Int64("seed", 1, "generator seed (synthetic only)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}

	if *realStr != "" {
		pts, err := dataset.Real(dataset.RealName(*realStr), *n)
		fatal(err)
		fatal(dataset.WriteCSV(w, pts))
		return
	}
	typ, err := dataset.ParseType(*typStr)
	fatal(err)
	fatal(dataset.WriteCSV(w, dataset.Generate(typ, *n, *d, *seed)))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
