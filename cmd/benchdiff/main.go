// Command benchdiff compares a freshly generated bench report
// (BENCH_solve.json) against a committed baseline and exits nonzero on
// regression. CI machines differ from the machine that produced the
// baseline, so the gates use only machine-independent signals:
//
//   - allocations per query (deterministic for a given code path) against
//     the baseline, per scenario row and per cpu-matrix row;
//   - the cross-query-sharing contract within the current report: for every
//     (scenario, cpus) pair in the cpu matrix, the shared row must beat the
//     independent row on ns/query and allocs/query;
//   - the shared/independent ns ratio against the baseline's ratio, which
//     divides out the machine.
//
// Raw ns/query and speedup-vs-1-core are machine-dependent and never gated.
// Rows present in the baseline but missing from the current report fail the
// run: a silently dropped scenario must not pass as "no regression".
//
// Usage:
//
//	benchdiff -baseline results/BENCH_baseline.json -current BENCH_solve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// row mirrors the benchResult fields benchdiff gates on.
type row struct {
	Name       string `json:"name"`
	NsPerQuery int64  `json:"ns_per_query"`
	AllocsPerQ int64  `json:"allocs_per_query"`
}

// anytimeRow mirrors the anytimeBenchResult fields benchdiff gates on. The
// volume-error columns come from a fixed-seed paired Monte-Carlo measurement,
// so they are machine-independent and gated directly:
//
//   - the curve must exist (a silently dropped anytime suite must not pass);
//   - volume_error_max must stay within error_bound (+slack): the accuracy
//     contract the anytime tier advertises via ρ;
//   - volume_error_mean must not be meaningfully negative, which would mean
//     an anytime region covering space the exact region does not — an
//     unsoundness, not a perf regression;
//   - along each curve (ascending budget) volume_error_max and error_bound
//     must be non-increasing, and the final rung must run uncut — the
//     monotone anytime contract.
type anytimeRow struct {
	Name       string  `json:"name"`
	Curve      string  `json:"curve"`
	Budget     int     `json:"budget"`
	Cut        bool    `json:"cut"`
	ErrorBound float64 `json:"error_bound"`
	VolErrMean float64 `json:"volume_error_mean"`
	VolErrMax  float64 `json:"volume_error_max"`
}

// matrixRow mirrors the cpuMatrixRow fields benchdiff gates on.
type matrixRow struct {
	Name       string `json:"name"`
	CPUs       int    `json:"cpus"`
	Shared     bool   `json:"shared"`
	NsPerQuery int64  `json:"ns_per_query"`
	AllocsPerQ int64  `json:"allocs_per_query"`
}

// report is the subset of the BENCH_solve.json document benchdiff reads.
type report struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Results    []row        `json:"results"`
	CPUMatrix  []matrixRow  `json:"cpu_matrix"`
	Anytime    []anytimeRow `json:"anytime_results"`
}

type matrixKey struct {
	name   string
	cpus   int
	shared bool
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline report (required)")
		currentPath  = flag.String("current", "", "freshly generated report to check (required)")
		allocsTol    = flag.Float64("allocs-tol", 1.25, "max allowed allocs/query growth factor vs baseline")
		allocsSlack  = flag.Int64("allocs-slack", 16, "absolute allocs/query slack added to the tolerance (keeps tiny rows from failing on ±1)")
		sharedNsTol  = flag.Float64("shared-ns-tol", 0.90, "cpu matrix: shared ns/query must be ≤ independent × this (shared must win)")
		sharedAlTol  = flag.Float64("shared-allocs-tol", 0.90, "cpu matrix: shared allocs/query must be ≤ independent × this")
		ratioTol     = flag.Float64("ratio-tol", 1.5, "max allowed growth of the shared/independent ns ratio vs the baseline's ratio")
		anytimeSlack = flag.Float64("anytime-slack", 0.02, "Monte-Carlo slack added to the anytime error bound (and allowed below zero) before a volume-error row fails")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are both required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var failures []string
	failf := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	// Scenario rows: presence + allocs regression.
	curRows := make(map[string]row, len(cur.Results))
	for _, r := range cur.Results {
		curRows[r.Name] = r
	}
	checked := 0
	for _, b := range base.Results {
		c, ok := curRows[b.Name]
		if !ok {
			failf("result %-18s missing from current report", b.Name)
			continue
		}
		checked++
		if limit := int64(float64(b.AllocsPerQ)**allocsTol) + *allocsSlack; c.AllocsPerQ > limit {
			failf("result %-18s allocs/query %d exceeds baseline %d (limit %d = %.2fx + %d)",
				b.Name, c.AllocsPerQ, b.AllocsPerQ, limit, *allocsTol, *allocsSlack)
		}
	}

	// CPU matrix rows: presence + allocs regression.
	baseMatrix := make(map[matrixKey]matrixRow, len(base.CPUMatrix))
	for _, r := range base.CPUMatrix {
		baseMatrix[matrixKey{r.Name, r.CPUs, r.Shared}] = r
	}
	curMatrix := make(map[matrixKey]matrixRow, len(cur.CPUMatrix))
	for _, r := range cur.CPUMatrix {
		curMatrix[matrixKey{r.Name, r.CPUs, r.Shared}] = r
	}
	for _, b := range base.CPUMatrix {
		k := matrixKey{b.Name, b.CPUs, b.Shared}
		c, ok := curMatrix[k]
		if !ok {
			failf("matrix %-14s cpus=%d shared=%-5v missing from current report", b.Name, b.CPUs, b.Shared)
			continue
		}
		checked++
		if limit := int64(float64(b.AllocsPerQ)**allocsTol) + *allocsSlack; c.AllocsPerQ > limit {
			failf("matrix %-14s cpus=%d shared=%-5v allocs/query %d exceeds baseline %d (limit %d)",
				b.Name, b.CPUs, b.Shared, c.AllocsPerQ, b.AllocsPerQ, limit)
		}
	}

	// Sharing contract within the current report, and ratio vs baseline.
	for k, sh := range curMatrix {
		if !k.shared {
			continue
		}
		ind, ok := curMatrix[matrixKey{k.name, k.cpus, false}]
		if !ok {
			failf("matrix %-14s cpus=%d has a shared row but no independent row", k.name, k.cpus)
			continue
		}
		checked++
		if ind.NsPerQuery > 0 && float64(sh.NsPerQuery) > float64(ind.NsPerQuery)**sharedNsTol {
			failf("matrix %-14s cpus=%d shared %d ns/query not below independent %d ns/query × %.2f",
				k.name, k.cpus, sh.NsPerQuery, ind.NsPerQuery, *sharedNsTol)
		}
		if ind.AllocsPerQ > 0 && float64(sh.AllocsPerQ) > float64(ind.AllocsPerQ)**sharedAlTol {
			failf("matrix %-14s cpus=%d shared %d allocs/query not below independent %d allocs/query × %.2f",
				k.name, k.cpus, sh.AllocsPerQ, ind.AllocsPerQ, *sharedAlTol)
		}
		bsh, ok1 := baseMatrix[matrixKey{k.name, k.cpus, true}]
		bind, ok2 := baseMatrix[matrixKey{k.name, k.cpus, false}]
		if ok1 && ok2 && bind.NsPerQuery > 0 && ind.NsPerQuery > 0 && bsh.NsPerQuery > 0 {
			baseRatio := float64(bsh.NsPerQuery) / float64(bind.NsPerQuery)
			curRatio := float64(sh.NsPerQuery) / float64(ind.NsPerQuery)
			if curRatio > baseRatio**ratioTol {
				failf("matrix %-14s cpus=%d shared/independent ns ratio %.3f regressed past baseline %.3f × %.2f",
					k.name, k.cpus, curRatio, baseRatio, *ratioTol)
			}
		}
	}

	// Anytime accuracy curve: presence, the ρ-backed error bound, soundness
	// of the paired measurement, and monotonicity along each budget ladder.
	if len(cur.Anytime) == 0 {
		failf("anytime_results missing or empty in current report")
	}
	curAnytime := make(map[string]anytimeRow, len(cur.Anytime))
	for _, r := range cur.Anytime {
		curAnytime[r.Name] = r
	}
	for _, b := range base.Anytime {
		if _, ok := curAnytime[b.Name]; !ok {
			failf("anytime %-16s missing from current report", b.Name)
		}
	}
	curves := map[string][]anytimeRow{}
	for _, r := range cur.Anytime {
		checked++
		if r.VolErrMax > r.ErrorBound+*anytimeSlack {
			failf("anytime %-16s volume_error_max %.4f exceeds error_bound %.4f + %.3f slack",
				r.Name, r.VolErrMax, r.ErrorBound, *anytimeSlack)
		}
		if r.VolErrMean < -*anytimeSlack {
			failf("anytime %-16s volume_error_mean %.4f is negative: anytime region exceeds the exact region",
				r.Name, r.VolErrMean)
		}
		curves[r.Curve] = append(curves[r.Curve], r)
	}
	for name, rows := range curves {
		// Rows arrive in ladder order (ascending budget); verify rather than
		// assume, then hold the curve to the monotone anytime contract.
		for i := 1; i < len(rows); i++ {
			checked++
			if rows[i].Budget <= rows[i-1].Budget {
				failf("anytime curve %-10s budgets not ascending: %d after %d", name, rows[i].Budget, rows[i-1].Budget)
				continue
			}
			if rows[i].VolErrMax > rows[i-1].VolErrMax {
				failf("anytime curve %-10s volume_error_max grew from %.4f (budget %d) to %.4f (budget %d)",
					name, rows[i-1].VolErrMax, rows[i-1].Budget, rows[i].VolErrMax, rows[i].Budget)
			}
			if rows[i].ErrorBound > rows[i-1].ErrorBound {
				failf("anytime curve %-10s error_bound grew from %.4f (budget %d) to %.4f (budget %d)",
					name, rows[i-1].ErrorBound, rows[i-1].Budget, rows[i].ErrorBound, rows[i].Budget)
			}
		}
		if last := rows[len(rows)-1]; last.Cut {
			failf("anytime curve %-10s final rung (budget %d) was cut — the ladder never ran to completion", name, last.Budget)
		}
	}

	if len(failures) > 0 {
		fmt.Printf("benchdiff: %d regression(s) (baseline %s @ %s, current %s @ %s):\n",
			len(failures), *baselinePath, base.GoVersion, *currentPath, cur.GoVersion)
		for _, f := range failures {
			fmt.Println("  FAIL", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok — %d checks against %s (current gomaxprocs=%d, baseline gomaxprocs=%d)\n",
		checked, *baselinePath, cur.GOMAXPROCS, base.GOMAXPROCS)
}
