package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rrq"
)

// buildRRQD compiles the rrqd binary into dir and returns its path.
func buildRRQD(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "rrqd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral port and releases it for the server.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// waitHealthz polls /healthz until it reports want or the deadline passes.
func waitHealthz(t *testing.T, client *http.Client, base, want string, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if strings.TrimSpace(buf.String()) == want {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("healthz never reported %q within %v", want, deadline)
}

// TestGracefulShutdownE2E drives the real binary through the drain
// contract: SIGTERM mid-solve lets the in-flight request complete, answers
// new requests 503 "draining", writes a final checkpoint, and the
// checkpoint round-trips — reopening the durability directory replays no
// WAL records and resumes at the acknowledged version.
func TestGracefulShutdownE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	scratch := t.TempDir()
	bin := buildRRQD(t, scratch)
	walDir := filepath.Join(scratch, "wal")
	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)

	cmd := exec.Command(bin,
		"-synthetic", "indep:200:3:1",
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-wal-dir", walDir,
		"-debug-solve-delay", "900ms",
		"-drain-timeout", "15s",
		"-drain-grace", "3s",
	)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// One shared keep-alive client: its pooled connection is what keeps
	// post-SIGTERM requests reaching the handler (Shutdown closes the
	// listener, not established connections).
	client := &http.Client{Timeout: 10 * time.Second}
	waitHealthz(t, client, base, "ok", 10*time.Second)

	if resp, err := client.Post(base+"/v1/insert", "application/json",
		strings.NewReader(`{"point":[0.3,0.4,0.5]}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert status %d", resp.StatusCode)
		}
	}

	// Launch the in-flight solve (it holds the handler for the debug
	// delay), then SIGTERM while it runs.
	type solveDone struct {
		status  int
		elapsed time.Duration
		err     error
	}
	donec := make(chan solveDone, 1)
	go func() {
		start := time.Now()
		resp, err := client.Post(base+"/v1/solve", "application/json",
			strings.NewReader(`{"q":[0.4,0.3,0.3],"k":2,"epsilon":0.1}`))
		d := solveDone{elapsed: time.Since(start), err: err}
		if err == nil {
			d.status = resp.StatusCode
			resp.Body.Close()
		}
		donec <- d
	}()
	time.Sleep(250 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// New requests on the pooled connection shed with 503 while draining.
	waitHealthz(t, client, base, "draining", 5*time.Second)
	resp, err := client.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"q":[0.5,0.3,0.2],"k":2,"epsilon":0.1}`))
	if err != nil {
		t.Fatalf("post-SIGTERM request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-SIGTERM solve status %d, want 503", resp.StatusCode)
	}

	// The in-flight solve must complete successfully despite the drain.
	d := <-donec
	if d.err != nil || d.status != http.StatusOK {
		t.Fatalf("in-flight solve: status %d err %v", d.status, d.err)
	}
	if d.elapsed < 800*time.Millisecond {
		t.Fatalf("in-flight solve finished in %v — the debug delay did not hold it across the SIGTERM", d.elapsed)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("rrqd exited with %v\n%s", err, out.String())
	}
	for _, wantLine := range []string{"rrqd: final checkpoint at version 2", "rrqd: clean shutdown"} {
		if !strings.Contains(out.String(), wantLine) {
			t.Fatalf("rrqd output missing %q:\n%s", wantLine, out.String())
		}
	}

	// The exit checkpoint round-trips: reopening needs no seed dataset,
	// replays nothing, and resumes at the acknowledged version.
	ix, rec, err := rrq.OpenDurableIndex(rrq.DurableConfig{Dir: walDir}, nil)
	if err != nil {
		t.Fatalf("reopen after clean shutdown: %v", err)
	}
	defer ix.Close()
	if rec.Replayed != 0 || rec.Fresh {
		t.Fatalf("clean shutdown still required replay: %s", rec)
	}
	if ix.Version() != 2 || ix.Len() != 201 {
		t.Fatalf("recovered version %d len %d, want 2/201", ix.Version(), ix.Len())
	}
}
