// Command rrqd is the long-running reverse-regret-query server: it builds a
// persistent snapshot index over a dataset and serves JSON solve, insert,
// delete and stats endpoints over HTTP, with queue-depth-aware admission
// control (load shedding with Retry-After under the cap policy), per-tenant
// work metering and a monotonicity-aware result cache.
//
// Usage:
//
//	rrqd -data cars.csv -addr :8080
//	rrqd -synthetic indep:5000:3:1 -cache 1024 -cache-bounds
//	rrqd -real NBA:3000 -policy cap -capacity 8 -queue 64
//	rrqd -synthetic indep:2000:2:7 -tenant-rate 50000 -tenant-burst 200000
//	rrqd -synthetic indep:2000:3:1 -wal-dir /var/lib/rrqd -fsync always
//
// With -wal-dir the server is durable: mutations are written ahead to a
// checksummed log before they are acknowledged, snapshots fold into
// crash-atomic checkpoints every -checkpoint-every mutations, and a
// restart recovers the acknowledged state (replaying the WAL tail,
// truncating torn records) while the listener answers 503 "recovering".
// The dataset flags then only seed the very first start — a restart
// recovers from the directory alone.
//
// See docs/SERVING.md for the endpoint reference, cache semantics and the
// durability contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rrq"
	"rrq/internal/dataset"
	"rrq/internal/faultinject"
	"rrq/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataPath    = flag.String("data", "", "CSV dataset path (header + numeric rows)")
		synthetic   = flag.String("synthetic", "", "synthetic dataset spec type:n:d:seed, e.g. indep:5000:3:1")
		real        = flag.String("real", "", "real dataset stand-in spec name:maxN, e.g. NBA:3000")
		algoStr     = flag.String("algo", "auto", "auto|sweeping|ept|apc|lpcta|brute")
		samples     = flag.Int("samples", 0, "A-PC sample count (0 = paper default)")
		kmax        = flag.Int("kmax", 0, "rank ceiling of the index's rank-level tree (0 = default)")
		cacheN      = flag.Int("cache", 1024, "result cache capacity in entries (0 = no cache)")
		cacheBnd    = flag.Bool("cache-bounds", false, "serve sound inner/outer bounds from cached neighbors")
		qTimeout    = flag.Duration("query-timeout", 0, "per-query wall-clock limit (0 = none)")
		budget      = flag.Int64("budget", 0, "per-query work budget in solver units (0 = none)")
		fallback    = flag.String("fallback", "", "comma-separated fallback algorithms, e.g. apc")
		policyStr   = flag.String("policy", "always", `admission policy: "always" (queue) or "cap" (shed)`)
		capacity    = flag.Int("capacity", 0, "concurrent solve slots (0 = GOMAXPROCS)")
		queueLen    = flag.Int("queue", 64, "queued requests beyond the slots before the cap policy sheds")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant refill rate in work units/second (0 = no metering)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant budget burst in work units")

		walDir     = flag.String("wal-dir", "", "durability directory (WAL + checkpoints); empty = in-memory only")
		fsync      = flag.String("fsync", "always", `WAL fsync policy: "always", "interval" or "never"`)
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, `flush period under -fsync interval`)
		ckptEvery  = flag.Int("checkpoint-every", 0, "mutations between automatic checkpoints (0 = default 256)")
		compat     = flag.Bool("index-compat", false, "accept legacy headerless checkpoint/index files")
		drainT     = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain limit before in-flight requests are force-closed")
		drainG     = flag.Duration("drain-grace", 0, "after SIGTERM, keep the listener open this long answering 503 so load balancers observe the drain before connections close")
		solveDelay = flag.Duration("debug-solve-delay", 0, "artificial per-solve delay (shutdown/drain testing only)")
		anytime    = flag.Duration("anytime", 0, "degrade saturated requests to the anytime tier under this per-solve budget instead of shedding (0 = shed)")
	)
	flag.Parse()

	algo, err := parseAlgo(*algoStr)
	fatal(err)

	reg := rrq.NewRegistry()
	opts := []rrq.Option{
		rrq.WithAlgorithm(algo),
		rrq.WithMetrics(reg),
		rrq.WithResultCache(*cacheN),
		rrq.WithCacheBounds(*cacheBnd),
	}
	if *samples > 0 {
		opts = append(opts, rrq.WithSamples(*samples))
	}
	if *kmax > 0 {
		opts = append(opts, rrq.WithKmax(*kmax))
	}
	if *qTimeout > 0 {
		opts = append(opts, rrq.WithQueryTimeout(*qTimeout))
	}
	if *budget > 0 {
		opts = append(opts, rrq.WithWorkBudget(*budget))
	}
	if *fallback != "" {
		var chain []rrq.Algorithm
		for _, s := range strings.Split(*fallback, ",") {
			a, err := parseAlgo(strings.TrimSpace(s))
			fatal(err)
			chain = append(chain, a)
		}
		opts = append(opts, rrq.WithFallback(chain...))
	}

	if *compat {
		opts = append(opts, rrq.WithIndexCompat(true))
	}

	durable := *walDir != ""
	var ix *rrq.Index
	if !durable {
		// In-memory serving: build before listening, exactly as before.
		ds, err := loadDataset(*dataPath, *synthetic, *real)
		fatal(err)
		buildStart := time.Now()
		ix, err = rrq.BuildIndex(ds, opts...)
		fatal(err)
		fmt.Printf("rrqd: index built: %d points, dim %d, epoch %d (%v)\n",
			ix.Len(), ix.Dim(), ix.Version(), time.Since(buildStart).Round(time.Millisecond))
	}

	policy, err := server.ParseAdmissionPolicy(*policyStr)
	fatal(err)
	if *capacity <= 0 {
		*capacity = runtime.GOMAXPROCS(0)
	}
	cfg := server.Config{
		Index:         ix,
		Recovering:    durable,
		Metrics:       reg,
		Admission:     server.NewAdmission(policy, *capacity, *queueLen),
		AnytimeBudget: *anytime,
	}
	if *tenantRate > 0 && *tenantBurst > 0 {
		cfg.Tenants = server.NewTenantBudgets(*tenantRate, *tenantBurst)
	}
	if *solveDelay > 0 {
		in := faultinject.New(&faultinject.Fault{Point: faultinject.SolveStart, Delay: *solveDelay})
		cfg.BaseContext = func() context.Context {
			return faultinject.ContextWith(context.Background(), in)
		}
	}
	srv, err := server.New(cfg)
	fatal(err)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("rrqd: serving on %s (policy=%s capacity=%d cache=%d)\n",
			*addr, policy, cfg.Admission.Capacity(), *cacheN)
		errc <- httpSrv.ListenAndServe()
	}()

	if durable {
		// Recover while the listener answers 503 "recovering": the dataset
		// flags seed only a first start — the closure is not invoked when a
		// checkpoint exists, so restarts need no dataset source.
		recoverStart := time.Now()
		seed := func() (*rrq.Dataset, error) {
			ds, err := loadDataset(*dataPath, *synthetic, *real)
			if err != nil {
				return nil, fmt.Errorf("rrqd: no checkpoint in %s, seeding needs a dataset: %w", *walDir, err)
			}
			return ds, nil
		}
		var rec *rrq.RecoveryInfo
		ix, rec, err = rrq.OpenDurableIndex(rrq.DurableConfig{
			Dir:             *walDir,
			Fsync:           *fsync,
			FsyncInterval:   *fsyncEvery,
			CheckpointEvery: *ckptEvery,
		}, seed, opts...)
		fatal(err)
		fmt.Printf("rrqd: recovered in %v: %s\n", time.Since(recoverStart).Round(time.Millisecond), rec)
		srv.Ready(ix)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("rrqd: %v — draining (timeout %v)\n", sig, *drainT)
		srv.StartDrain()
		if *drainG > 0 {
			// Announce before closing: new requests answer 503 with
			// Retry-After while the listener stays open, giving health
			// checkers time to deregister the instance.
			time.Sleep(*drainG)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// Drain expired: count it, force-close the stragglers and keep
			// shutting down — durability does not depend on their answers.
			reg.Counter("server.drain_forced").Inc()
			fmt.Fprintf(os.Stderr, "rrqd: drain timeout after %v, forcing close: %v\n", *drainT, err)
			_ = httpSrv.Close()
		}
		if durable {
			// Final checkpoint: a clean restart then replays nothing.
			if err := ix.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "rrqd: final checkpoint: %v (WAL remains authoritative)\n", err)
			} else {
				fmt.Printf("rrqd: final checkpoint at version %d\n", ix.LastCheckpointVersion())
			}
			if err := ix.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rrqd: wal close: %v\n", err)
			}
		}
		fmt.Println("rrqd: clean shutdown")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// loadDataset resolves exactly one of the three dataset sources.
func loadDataset(csvPath, synthetic, real string) (*rrq.Dataset, error) {
	set := 0
	for _, s := range []string{csvPath, synthetic, real} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("rrqd: exactly one of -data, -synthetic, -real is required")
	}
	switch {
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pts, err := dataset.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		if len(pts) == 0 {
			return nil, fmt.Errorf("rrqd: no data rows in %s", csvPath)
		}
		raw := make([][]float64, len(pts))
		for i, p := range pts {
			raw[i] = p
		}
		ds, err := rrq.NewDataset(raw)
		if err != nil {
			return nil, err
		}
		return ds.Normalize(), nil
	case synthetic != "":
		parts := strings.Split(synthetic, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("rrqd: -synthetic wants type:n:d:seed, got %q", synthetic)
		}
		var t rrq.DistType
		switch parts[0] {
		case "indep":
			t = rrq.Independent
		case "corr":
			t = rrq.Correlated
		case "anti":
			t = rrq.Anticorrelated
		default:
			return nil, fmt.Errorf("rrqd: unknown distribution %q (want indep|corr|anti)", parts[0])
		}
		n, err1 := strconv.Atoi(parts[1])
		d, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("rrqd: malformed -synthetic %q", synthetic)
		}
		return rrq.SyntheticDataset(t, n, d, seed), nil
	default:
		name, maxS, ok := strings.Cut(real, ":")
		maxN := 0
		if ok {
			var err error
			if maxN, err = strconv.Atoi(maxS); err != nil {
				return nil, fmt.Errorf("rrqd: malformed -real %q", real)
			}
		}
		return rrq.RealDataset(name, maxN)
	}
}

func parseAlgo(s string) (rrq.Algorithm, error) {
	switch strings.ToLower(s) {
	case "auto":
		return rrq.Auto, nil
	case "sweeping", "sweep":
		return rrq.SweepingAlgo, nil
	case "ept":
		return rrq.EPTAlgo, nil
	case "apc":
		return rrq.APCAlgo, nil
	case "lpcta":
		return rrq.LPCTAAlgo, nil
	case "brute":
		return rrq.BruteForceAlgo, nil
	default:
		return 0, fmt.Errorf("rrqd: unknown algorithm %q", s)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
