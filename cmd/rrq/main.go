// Command rrq answers a reverse regret query over a CSV dataset.
//
// The CSV must have one header line and one numeric row per product. The
// query product is given as comma-separated attribute values. Output lists
// the qualified partitions, the preference-space share they cover, and a
// few example qualified utility vectors.
//
// Usage:
//
//	rrq -data cars.csv -q 0.45,0.2 -k 10 -eps 0.1
//	rrq -data cars.csv -q 0.45,0.2 -k 10 -eps 0.1 -algo apc -samples 200
//	rrq -data cars.csv -queries "0.45,0.2;0.5,0.3" -k 10 -workers 4 -timeout 30s
//	rrq -data cars.csv -q 0.45,0.2 -k 10 -query-timeout 50ms -budget 100000 -fallback apc
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rrq/internal/dataset"

	"rrq"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV dataset path (header + numeric rows)")
		qStr      = flag.String("q", "", "query product, e.g. 0.45,0.2")
		qsStr     = flag.String("queries", "", "batch of query products separated by ';', e.g. 0.45,0.2;0.5,0.3")
		k         = flag.Int("k", 1, "rank relaxation k")
		eps       = flag.Float64("eps", 0.1, "regret threshold ε")
		algoStr   = flag.String("algo", "auto", "auto|sweeping|ept|apc|lpcta|brute")
		samples   = flag.Int("samples", 0, "A-PC sample count (0 = paper default)")
		skyband   = flag.Bool("skyband", true, "preprocess to the k-skyband")
		measureN  = flag.Int("measure", 50000, "Monte-Carlo samples for the share estimate")
		asJSON    = flag.Bool("json", false, "emit the region as JSON instead of text")
		profile   = flag.Bool("profile", false, "print the market-share curve over ε instead of solving one query")
		timeout   = flag.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
		workers   = flag.Int("workers", 0, "worker pool size for -queries batches (0 = GOMAXPROCS)")
		intra     = flag.Int("intra-workers", 0, "workers inside each solve (E-PT subtree / A-PC sample pools; <=1 = serial)")
		metrics   = flag.Bool("metrics", false, "print solver metrics (phase timers, work counters) after solving")
		qTimeout  = flag.Duration("query-timeout", 0, "per-query wall-clock limit, restarted for each query of a batch (0 = none)")
		budget    = flag.Int64("budget", 0, "per-query work budget in solver work units (0 = none)")
		fallback  = flag.String("fallback", "", "comma-separated fallback algorithms tried on timeout/budget/numerical failure, e.g. apc,lpcta")
		indexMode = flag.String("index", "", "build|load: serve queries from a persistent snapshot index instead of per-query preprocessing")
		indexFile = flag.String("index-file", "", "index file path: written by -index build, read by -index load")
		kmax      = flag.Int("kmax", 0, "rank ceiling of the index's rank-level tree for -index build (0 = default)")
		ixCompat  = flag.Bool("index-compat", false, "accept the legacy headerless index file format with -index load")
	)
	flag.Parse()

	if *indexMode != "" && *indexMode != "build" && *indexMode != "load" {
		fmt.Fprintln(os.Stderr, `rrq: -index must be "build" or "load"`)
		os.Exit(2)
	}
	if *indexMode == "load" && *indexFile == "" {
		fmt.Fprintln(os.Stderr, "rrq: -index load requires -index-file")
		os.Exit(2)
	}
	dataNeeded := *indexMode != "load"
	queryNeeded := *indexMode == ""
	if (dataNeeded && *dataPath == "") || (queryNeeded && *qStr == "" && *qsStr == "") {
		fmt.Fprintln(os.Stderr, "rrq: -data and one of -q / -queries are required")
		flag.Usage()
		os.Exit(2)
	}

	var ds *rrq.Dataset
	if dataNeeded {
		f, err := os.Open(*dataPath)
		fatal(err)
		pts, err := dataset.ReadCSV(f)
		f.Close()
		fatal(err)
		if len(pts) == 0 {
			fatal(fmt.Errorf("no data rows in %s", *dataPath))
		}
		raw := make([][]float64, len(pts))
		for i, p := range pts {
			raw[i] = p
		}
		ds, err = rrq.NewDataset(raw)
		fatal(err)
		ds = ds.Normalize()
		// The index maintains its own k-skyband prefilter incrementally, so
		// the per-build skyband cut only applies to the per-query path.
		if *skyband && *indexMode == "" {
			ds = ds.KSkyband(*k)
		}
	}

	algo, err := parseAlgo(*algoStr)
	fatal(err)

	var resOpts []rrq.Option
	if *qTimeout > 0 {
		resOpts = append(resOpts, rrq.WithQueryTimeout(*qTimeout))
	}
	if *budget > 0 {
		resOpts = append(resOpts, rrq.WithWorkBudget(*budget))
	}
	if *fallback != "" {
		var chain []rrq.Algorithm
		for _, s := range strings.Split(*fallback, ",") {
			a, err := parseAlgo(strings.TrimSpace(s))
			fatal(err)
			chain = append(chain, a)
		}
		resOpts = append(resOpts, rrq.WithFallback(chain...))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var reg *rrq.Registry
	if *metrics {
		reg = rrq.NewRegistry()
	}

	if *indexMode != "" {
		opts := []rrq.Option{rrq.WithAlgorithm(algo), rrq.WithIntraQueryWorkers(*intra)}
		opts = append(opts, resOpts...)
		if *samples > 0 {
			opts = append(opts, rrq.WithSamples(*samples))
		}
		if reg != nil {
			opts = append(opts, rrq.WithMetrics(reg))
		}
		if *ixCompat {
			opts = append(opts, rrq.WithIndexCompat(true))
		}
		indexMain(ctx, ds, reg, *indexMode, *indexFile, *qStr, *qsStr, *k, *kmax, *eps, *measureN, *workers, *asJSON, opts)
		return
	}

	if *qsStr != "" {
		opts := []rrq.Option{rrq.WithAlgorithm(algo), rrq.WithWorkers(*workers), rrq.WithIntraQueryWorkers(*intra)}
		opts = append(opts, resOpts...)
		if *samples > 0 {
			opts = append(opts, rrq.WithSamples(*samples))
		}
		if reg != nil {
			opts = append(opts, rrq.WithMetrics(reg))
		}
		var queries []rrq.Query
		for _, s := range strings.Split(*qsStr, ";") {
			q, err := parsePoint(s)
			fatal(err)
			queries = append(queries, rrq.Query{Q: q, K: *k, Epsilon: *eps})
		}
		report, err := rrq.SolveBatch(ctx, ds, queries, opts...)
		fatal(err)
		fmt.Printf("dataset: %d products (after preprocessing), %d attributes\n", ds.Len(), ds.Dim())
		fmt.Printf("batch:   %d queries  k=%d  eps=%.3f  algo=%v  workers=%d\n",
			len(queries), *k, *eps, algo, *workers)
		for i, res := range report.Results {
			if res.Err != nil {
				fmt.Printf("  q%-3d %v  error: %v\n", i, queries[i].Q, res.Err)
				continue
			}
			note := ""
			if deg := res.Degraded; deg != nil {
				note = fmt.Sprintf("  [degraded to %s: %v]", deg.Solver, deg.Reason)
			}
			fmt.Printf("  q%-3d %v  %d partition(s), %.2f%% of the preference space  (%v)%s\n",
				i, queries[i].Q, res.Region.NumPartitions(), 100*res.Region.Measure(*measureN), res.Elapsed.Round(time.Microsecond), note)
		}
		fmt.Printf("total:   %d solved (%d degraded), %d failed in %v (query time %v)\n",
			report.Solved, report.Degraded, report.Failed, report.Elapsed.Round(time.Microsecond), report.QueryTime.Round(time.Microsecond))
		printMetrics(reg)
		return
	}

	q, err := parsePoint(*qStr)
	fatal(err)

	if *profile {
		sp, err := rrq.NewShareProfile(ds, q, *k, 20000, 1)
		fatal(err)
		fmt.Printf("market-share curve for q=%v at k=%d (20000 preference samples)\n", q, *k)
		for _, eps := range []float64{0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3} {
			fmt.Printf("  eps=%.2f  share=%6.2f%%\n", eps, 100*sp.Share(eps))
		}
		for _, target := range []float64{0.25, 0.5, 0.75} {
			fmt.Printf("  share %.0f%% needs eps >= %.4f\n", 100*target, sp.EpsForShare(target))
		}
		return
	}

	opts := []rrq.Option{rrq.WithAlgorithm(algo), rrq.WithIntraQueryWorkers(*intra)}
	opts = append(opts, resOpts...)
	if *samples > 0 {
		opts = append(opts, rrq.WithSamples(*samples))
	}
	if reg != nil {
		opts = append(opts, rrq.WithMetrics(reg))
	}
	res, err := rrq.SolveContext(ctx, ds, rrq.Query{Q: q, K: *k, Epsilon: *eps}, opts...)
	fatal(err)
	region := res.Region

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(region))
		printMetrics(reg)
		return
	}

	fmt.Printf("dataset: %d products (after preprocessing), %d attributes\n", ds.Len(), ds.Dim())
	fmt.Printf("query:   q=%v  k=%d  eps=%.3f  algo=%v  solved in %v\n",
		q, *k, *eps, algo, res.Elapsed.Round(time.Microsecond))
	if deg := res.Degraded; deg != nil {
		fmt.Printf("note:    degraded to %s after %s failure of the primary (%v)\n",
			deg.Solver, deg.Reason, deg.Cause)
	}
	if region.IsEmpty() {
		fmt.Println("result:  no prospective customers — q never scores within ε of the top-k")
		printMetrics(reg)
		return
	}
	share := region.Measure(*measureN)
	fmt.Printf("result:  %d qualified partition(s) covering %.2f%% of the preference space\n",
		region.NumPartitions(), 100*share)
	if ds.Dim() == 2 {
		for _, iv := range region.Intervals2D() {
			fmt.Printf("  preference weight on attr1 in [%.4f, %.4f]\n", iv[0], iv[1])
		}
	}
	for i := int64(0); i < 3; i++ {
		if u := region.Sample(i + 1); u != nil {
			fmt.Printf("  example qualified preference: %v\n", fmtVec(u))
		}
	}
	printMetrics(reg)
}

// indexMain implements -index build/load: it constructs or restores a
// snapshot index, optionally persists it, and serves any requested queries
// from the current snapshot instead of re-preprocessing per call.
func indexMain(ctx context.Context, ds *rrq.Dataset, reg *rrq.Registry, mode, file, qStr, qsStr string, k, kmax int, eps float64, measureN, workers int, asJSON bool, opts []rrq.Option) {
	var ix *rrq.Index
	switch mode {
	case "build":
		bopts := append([]rrq.Option(nil), opts...)
		if kmax > 0 {
			bopts = append(bopts, rrq.WithKmax(kmax))
		}
		start := time.Now()
		built, err := rrq.BuildIndex(ds, bopts...)
		fatal(err)
		ix = built
		fmt.Printf("index:   built epoch %d over %d products, %d attributes in %v\n",
			ix.Version(), ix.Len(), ix.Dim(), time.Since(start).Round(time.Microsecond))
		if file != "" {
			f, err := os.Create(file)
			fatal(err)
			err = ix.Save(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			fatal(err)
			fmt.Printf("index:   saved to %s\n", file)
		}
	case "load":
		f, err := os.Open(file)
		fatal(err)
		start := time.Now()
		loaded, err := rrq.LoadIndex(f, opts...)
		f.Close()
		fatal(err)
		ix = loaded
		fmt.Printf("index:   loaded %s: epoch %d, %d products, %d attributes in %v\n",
			file, ix.Version(), ix.Len(), ix.Dim(), time.Since(start).Round(time.Microsecond))
	}

	if qsStr != "" {
		var queries []rrq.Query
		for _, s := range strings.Split(qsStr, ";") {
			q, err := parsePoint(s)
			fatal(err)
			queries = append(queries, rrq.Query{Q: q, K: k, Epsilon: eps})
		}
		report, err := ix.SolveBatch(ctx, queries, rrq.WithWorkers(workers))
		fatal(err)
		fmt.Printf("batch:   %d queries  k=%d  eps=%.3f  served from index epoch %d\n",
			len(queries), k, eps, ix.Version())
		for i, res := range report.Results {
			if res.Err != nil {
				fmt.Printf("  q%-3d %v  error: %v\n", i, queries[i].Q, res.Err)
				continue
			}
			fmt.Printf("  q%-3d %v  %d partition(s), %.2f%% of the preference space  (%v)\n",
				i, queries[i].Q, res.Region.NumPartitions(), 100*res.Region.Measure(measureN), res.Elapsed.Round(time.Microsecond))
		}
		fmt.Printf("total:   %d solved (%d degraded), %d failed in %v (query time %v)\n",
			report.Solved, report.Degraded, report.Failed, report.Elapsed.Round(time.Microsecond), report.QueryTime.Round(time.Microsecond))
		printMetrics(reg)
		return
	}

	if qStr == "" {
		printMetrics(reg)
		return
	}
	q, err := parsePoint(qStr)
	fatal(err)
	res, err := ix.SolveContext(ctx, rrq.Query{Q: q, K: k, Epsilon: eps})
	fatal(err)
	region := res.Region
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(region))
		printMetrics(reg)
		return
	}
	fmt.Printf("query:   q=%v  k=%d  eps=%.3f  served from index epoch %d in %v\n",
		q, k, eps, ix.Version(), res.Elapsed.Round(time.Microsecond))
	if region.IsEmpty() {
		fmt.Println("result:  no prospective customers — q never scores within ε of the top-k")
		printMetrics(reg)
		return
	}
	fmt.Printf("result:  %d qualified partition(s) covering %.2f%% of the preference space\n",
		region.NumPartitions(), 100*region.Measure(measureN))
	printMetrics(reg)
}

// printMetrics dumps the registry's expvar-style text exposition, if one
// was requested with -metrics.
func printMetrics(reg *rrq.Registry) {
	if reg == nil {
		return
	}
	fmt.Println("metrics:")
	for _, line := range strings.Split(strings.TrimRight(reg.Text(), "\n"), "\n") {
		fmt.Println("  " + line)
	}
}

func parsePoint(s string) (rrq.Point, error) {
	parts := strings.Split(s, ",")
	p := make(rrq.Point, len(parts))
	for i, f := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad query component %q: %w", f, err)
		}
		p[i] = x
	}
	return p, nil
}

func parseAlgo(s string) (rrq.Algorithm, error) {
	switch strings.ToLower(s) {
	case "auto":
		return rrq.Auto, nil
	case "sweeping":
		return rrq.SweepingAlgo, nil
	case "ept":
		return rrq.EPTAlgo, nil
	case "apc":
		return rrq.APCAlgo, nil
	case "lpcta":
		return rrq.LPCTAAlgo, nil
	case "brute":
		return rrq.BruteForceAlgo, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func fmtVec(u rrq.Vector) string {
	parts := make([]string, len(u))
	for i, x := range u {
		parts[i] = strconv.FormatFloat(x, 'f', 4, 64)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrq:", err)
		os.Exit(1)
	}
}
